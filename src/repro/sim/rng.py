"""Named, seeded random-number streams.

Every stochastic model component draws from its own named stream so that
(a) runs are bit-for-bit reproducible from a single experiment seed, and
(b) adding a new random draw in one component cannot perturb another
component's sequence (the classic "simulation random stream" discipline).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngHub"]


class RngHub:
    """Factory of independent :class:`numpy.random.Generator` streams.

    >>> hub = RngHub(seed=42)
    >>> jitter = hub.stream("nvme.device.ssd0")
    >>> placement = hub.stream("glusterfs.hash")

    The same ``(seed, name)`` pair always yields the same sequence.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(self._derive(name))
            self._streams[name] = generator
        return generator

    def fork(self, name: str) -> "RngHub":
        """A child hub whose streams are independent of this hub's."""
        return RngHub(self._derive(f"fork:{name}"))

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")
