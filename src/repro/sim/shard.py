"""Shard coordination: conservative window sync across environments.

The engine's event loop is strictly single-environment.  Sharded runs
partition model state across several :class:`~repro.sim.engine.Environment`
instances and keep them causally consistent with the classic
conservative-synchronization protocol (Chandy/Misra windows):

* Every cross-shard interaction goes through a :class:`BoundaryChannel`
  with a fixed minimum latency — in this reproduction the natural
  boundary is the NVMf fabric, so the channel latency defaults to the
  fabric round-trip time (the *lookahead*).
* The :class:`ShardCoordinator` advances all member environments in
  lockstep windows ``[T, T + lookahead)``.  Any message sent during a
  window is delivered at ``t_send + latency >= T + lookahead``, i.e.
  never inside the window that produced it, so each shard can process
  its local events independently and the global event order is
  well-defined.
* Determinism: shards run in fixed list order, pending messages are
  delivered sorted by ``(delivery_time, channel_index, send_seq)``, and
  channel sequence numbers are allocated per channel — the merged
  behaviour depends only on seeds and model code, never on host
  scheduling.

This module is the in-process half of the execution layer; the
multi-process half (:mod:`repro.exec`) ships whole coordinator groups
(or independent environments) to worker processes and merges results.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.engine import Environment, Event

__all__ = ["BoundaryChannel", "ShardCoordinator", "fabric_lookahead",
           "DEFAULT_LOOKAHEAD_S"]

#: Fallback lookahead when no fabric is wired: one EDR InfiniBand NVMf
#: round trip (2 x ~1.3 us propagation + target CPU), rounded up.  Real
#: deployments pass the measured RTT from their topology instead.
DEFAULT_LOOKAHEAD_S: float = 5e-6


class BoundaryChannel:
    """A latency-floored, FIFO message channel between two environments.

    ``send`` may only be called from code running inside ``src`` and
    records the message for delivery into ``dst`` at
    ``src.now + latency``.  ``recv`` returns an event on ``dst`` that
    triggers when the next message is delivered (FIFO).  The latency is
    the channel's *lookahead* contribution: the coordinator's window
    size is the minimum latency over all channels.
    """

    __slots__ = ("name", "src", "dst", "latency", "index",
                 "_outbox", "_send_seq", "_buffer", "_getters")

    def __init__(self, src: Environment, dst: Environment, latency: float,
                 name: str = "boundary") -> None:
        if latency <= 0:
            raise SimulationError(
                f"boundary channel {name!r} needs positive latency "
                f"(lookahead), got {latency}")
        self.name = name
        self.src = src
        self.dst = dst
        self.latency = float(latency)
        self.index = -1  # assigned by the coordinator; delivery tiebreak
        self._outbox: List[Tuple[float, int, Any]] = []
        self._send_seq = 0
        self._buffer: List[Any] = []
        self._getters: List[Event] = []

    def send(self, payload: Any) -> None:
        """Queue ``payload`` for delivery at ``src.now + latency``."""
        self._outbox.append((self.src.now + self.latency, self._send_seq, payload))
        self._send_seq += 1

    def recv(self) -> Event:
        """An event on ``dst`` triggering with the next delivered payload."""
        event = Event(self.dst)
        if self._buffer:
            event.succeed(self._buffer.pop(0))
        else:
            self._getters.append(event)
        return event

    def pending(self) -> int:
        """Messages sent but not yet delivered into ``dst``."""
        return len(self._outbox)

    # -- coordinator side --------------------------------------------------

    def _drain_outbox(self, horizon: float) -> List[Tuple[float, int, int, Any]]:
        """Take messages due strictly before ``horizon``; keep the rest."""
        due = [(t, self.index, seq, payload)
               for (t, seq, payload) in self._outbox if t < horizon]
        self._outbox = [entry for entry in self._outbox if entry[0] >= horizon]
        return due

    def _deliver(self, time: float, payload: Any) -> None:
        """Inject one message into ``dst`` at its delivery time."""
        kick = Event(self.dst)
        kick._triggered = True
        kick.callbacks.append(lambda _ev: self._arrive(payload))
        self.dst._schedule_at(kick, time)

    def _arrive(self, payload: Any) -> None:
        if self._getters:
            self._getters.pop(0).succeed(payload)
        else:
            self._buffer.append(payload)


class ShardCoordinator:
    """Runs several environments in lockstep conservative time windows.

    ``lookahead`` defaults to the minimum channel latency; passing a
    larger value is rejected (it would let a message land inside the
    window that sent it), a smaller one only costs extra window turns.
    """

    __slots__ = ("envs", "channels", "lookahead", "windows")

    def __init__(self, envs: List[Environment],
                 channels: Optional[List[BoundaryChannel]] = None,
                 lookahead: Optional[float] = None) -> None:
        if not envs:
            raise SimulationError("ShardCoordinator needs at least one environment")
        self.envs = list(envs)
        self.channels = list(channels or [])
        for index, channel in enumerate(self.channels):
            channel.index = index
            if channel.src not in self.envs or channel.dst not in self.envs:
                raise SimulationError(
                    f"channel {channel.name!r} endpoints are not member shards")
        floor = min((c.latency for c in self.channels), default=DEFAULT_LOOKAHEAD_S)
        self.lookahead = floor if lookahead is None else float(lookahead)
        if self.lookahead <= 0:
            raise SimulationError(f"lookahead must be positive, got {self.lookahead}")
        if self.lookahead > floor + 1e-18:
            raise SimulationError(
                f"lookahead {self.lookahead} exceeds the minimum channel "
                f"latency {floor}; messages could arrive inside their own window")
        self.windows = 0

    # -- protocol ----------------------------------------------------------

    def _next_time(self) -> Optional[float]:
        """Earliest pending work across all shards and channels."""
        times = [t for t in (env.peek() for env in self.envs) if t is not None]
        for channel in self.channels:
            if channel._outbox:
                times.append(min(entry[0] for entry in channel._outbox))
        return min(times) if times else None

    def _exchange(self, horizon: float) -> int:
        """Deliver every message due before ``horizon``, deterministically."""
        due: List[Tuple[float, int, int, Any]] = []
        for channel in self.channels:
            due.extend(channel._drain_outbox(horizon))
        heapq.heapify(due)  # (time, channel_index, send_seq) is a total order
        delivered = 0
        while due:
            time, channel_index, _seq, payload = heapq.heappop(due)
            self.channels[channel_index]._deliver(time, payload)
            delivered += 1
        return delivered

    def run(self, until: Optional[float] = None) -> float:
        """Advance all shards until every queue and channel drains.

        Returns the maximum shard clock.  With ``until``, stops once the
        next global event would land at or beyond it (clocks are not
        forced forward — mirrors :meth:`Environment.run_window`).
        """
        while True:
            base = self._next_time()
            if base is None:
                break
            if until is not None and base >= until:
                break
            horizon = base + self.lookahead
            if until is not None and horizon > until:
                horizon = until
            self._exchange(horizon)
            for env in self.envs:
                env.run_window(horizon)
            self.windows += 1
        return max(env.now for env in self.envs)

    def process(self, shard: int, generator: Any) -> Any:
        """Start a coroutine process on shard ``shard`` (convenience)."""
        return self.envs[shard].process(generator)

    def channel(self, src: int, dst: int, latency: Optional[float] = None,
                name: Optional[str] = None) -> BoundaryChannel:
        """Wire (and register) a boundary channel between member shards."""
        chosen = self.lookahead if latency is None else float(latency)
        channel = BoundaryChannel(
            self.envs[src], self.envs[dst], chosen,
            name=name or f"shard{src}->shard{dst}")
        channel.index = len(self.channels)
        self.channels.append(channel)
        if chosen < self.lookahead:
            self.lookahead = chosen
        return channel

    def drained(self) -> bool:
        """True when no shard has pending events or undelivered messages."""
        return self._next_time() is None

    def fingerprint_inputs(self) -> List[Tuple[int, float]]:
        """Per-shard (events_scheduled, now) pairs, in shard order."""
        return [(env.events_scheduled, env.now) for env in self.envs]


def fabric_lookahead(fabric: Any, src: str, dst: str,
                     fallback: float = DEFAULT_LOOKAHEAD_S) -> float:
    """Lookahead from a fabric model's round-trip time, when wired.

    ``fabric`` is anything with ``round_trip(src, dst) -> seconds``
    (:class:`repro.fabric.rdma.RdmaFabric`); the NVMf RTT is the natural
    conservative bound because no cross-shard effect can propagate
    faster than the fabric carries it.
    """
    round_trip: Optional[Callable[[str, str], float]] = getattr(
        fabric, "round_trip", None)
    if round_trip is None:
        return fallback
    rtt = float(round_trip(src, dst))
    return rtt if rtt > 0 else fallback
