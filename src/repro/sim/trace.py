"""Back-compat aliases for the old measurement helpers.

The ad-hoc :class:`Counter` / :class:`TraceRecorder` pair grew into the
typed instrument registry in :mod:`repro.obs.metrics`; both classes now
live there (``TraceRecorder`` with a consistent lookup contract —
``series()`` and ``last()`` both raise :class:`KeyError` for unknown
names).  Import from :mod:`repro.obs` for new code.
"""

from __future__ import annotations

from repro.obs.metrics import Counter, TraceRecorder

__all__ = ["Counter", "TraceRecorder"]
