"""Lightweight measurement collection for simulation runs.

:class:`Counter` accumulates named scalar counters (bytes written, log
records emitted, syscalls trapped). :class:`TraceRecorder` records
timestamped samples for time-series analysis (per-server load, queue
depth). Both are intentionally simple — results flow into
:mod:`repro.metrics.collector` for aggregation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

__all__ = ["Counter", "TraceRecorder"]


class Counter:
    """A bag of named, additive scalar counters."""

    def __init__(self) -> None:
        self._values: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        self._values[name] += amount

    def get(self, name: str) -> float:
        return self._values.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._values)

    def merge(self, other: "Counter") -> None:
        """Fold another counter's totals into this one."""
        for name, value in other._values.items():
            self._values[name] += value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._values.items()))
        return f"Counter({inner})"


class TraceRecorder:
    """Timestamped (t, value) samples per named series."""

    def __init__(self) -> None:
        self._series: Dict[str, List[Tuple[float, float]]] = defaultdict(list)

    def sample(self, name: str, t: float, value: float) -> None:
        self._series[name].append((t, value))

    def series(self, name: str) -> List[Tuple[float, float]]:
        return list(self._series.get(name, []))

    def names(self) -> List[str]:
        return sorted(self._series)

    def last(self, name: str) -> Tuple[float, float]:
        samples = self._series.get(name)
        if not samples:
            raise KeyError(f"no samples recorded for series {name!r}")
        return samples[-1]
