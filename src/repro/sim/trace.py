"""Deprecated back-compat aliases for the old measurement helpers.

The ad-hoc :class:`Counter` / :class:`TraceRecorder` pair grew into the
typed instrument registry in :mod:`repro.obs.metrics`; both classes now
live there (``TraceRecorder`` with a consistent lookup contract —
``series()`` and ``last()`` both raise :class:`KeyError` for unknown
names).  Import from :mod:`repro.obs.metrics` instead; this module will
be removed in a future release.
"""

from __future__ import annotations

import warnings

from repro.obs.metrics import Counter, TraceRecorder

__all__ = ["Counter", "TraceRecorder"]

warnings.warn(
    "repro.sim.trace is deprecated; import Counter and TraceRecorder "
    "from repro.obs.metrics instead",
    DeprecationWarning,
    stacklevel=2,
)
