"""Pluggable storage-system registry.

Usage::

    from repro import systems

    handle = systems.build("glusterfs", nprocs=28, namespace_bytes=GiB(4))
    elapsed = handle.makespan(dump_files(MiB(64)))

Importing this package registers every built-in system; third-party
backends register themselves with :func:`repro.systems.register`.
"""

from repro.systems import builtin as _builtin  # noqa: F401  (registers built-ins)
from repro.systems.registry import (
    SystemHandle,
    SystemSpec,
    build,
    build_shards,
    get,
    names,
    register,
    specs,
    split_ranks,
)

__all__ = [
    "SystemHandle",
    "SystemSpec",
    "build",
    "build_shards",
    "get",
    "names",
    "register",
    "specs",
    "split_ranks",
]
