"""Built-in storage-system builders.

One builder per comparable system in the evaluation. Each reproduces
exactly the object graph the experiments used to hand-wire (same
construction order, same RNG seeding, same client names), so routing an
experiment through the registry does not move a single simulated event.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

from repro.core.config import RuntimeConfig
from repro.sim.engine import Environment
from repro.systems.registry import SystemHandle, register
from repro.units import GiB

__all__: List[str] = []


# ---------------------------------------------------------------------------
# The paper's contribution: the full NVMe-CR runtime through the scheduler
# ---------------------------------------------------------------------------


@register(
    "nvmecr", title="NVMe-CR", short="nvmecr", kind="runtime",
    description="full NVMe-CR runtime: balancer, NVMf data plane, microfs",
)
def _build_nvmecr(
    *,
    nprocs: int,
    seed: int = 0,
    devices: Optional[int] = None,
    bytes_per_device: int = GiB(2),
    config: Optional[RuntimeConfig] = None,
    global_namespace: Any = None,
    job_name: str = "job",
    deployment: Any = None,
) -> SystemHandle:
    from repro.apps.deployment import Deployment

    dep = deployment if deployment is not None else Deployment(seed=seed)
    job, plan = dep.submit(
        job_name, nprocs=nprocs, devices=devices or 8,
        bytes_per_device=bytes_per_device,
    )
    run_config = config or RuntimeConfig()

    def run_ranks(rank_main: Callable) -> List[Any]:
        mpi_job = dep.run_job(
            job, plan, rank_main, config=run_config,
            global_namespace=global_namespace,
        )
        return mpi_job.results()

    return SystemHandle(
        env=dep.env, deployment=dep, _run_ranks=run_ranks,
        extras={"job": job, "plan": plan, "config": run_config},
    )


@register(
    "nvmecr-raft", title="NVMe-CR (Raft)", short="nvmecr-r", kind="runtime",
    description="NVMe-CR with a Raft-replicated control plane across zones",
)
def _build_nvmecr_raft(
    *,
    nprocs: int,
    seed: int = 0,
    devices: Optional[int] = None,
    bytes_per_device: int = GiB(2),
    config: Optional[RuntimeConfig] = None,
    global_namespace: Any = None,
    job_name: str = "job",
    deployment: Any = None,
    replicas: int = 3,
    witnesses: int = 0,
    zones: int = 2,
) -> SystemHandle:
    """The nvmecr data plane plus a zone-replicated metadata authority.

    Control-plane metadata (the :class:`MetadataStore` interface) is
    served by a Raft group whose members are spread one-per-zone over
    the federated cluster; the data plane is byte-for-byte the nvmecr
    builder's.  ``extras`` carries the live group, the replicated store,
    and the zone map for fault-injection experiments.
    """
    from repro.apps.deployment import Deployment
    from repro.consensus.group import RaftGroup
    from repro.core.control_plane import make_metadata_store
    from repro.topology.zones import ZoneMap

    dep = deployment if deployment is not None else Deployment(seed=seed)
    job, plan = dep.submit(
        job_name, nprocs=nprocs, devices=devices or 8,
        bytes_per_device=bytes_per_device,
    )
    run_config = (config or RuntimeConfig()).with_(control_plane_mode="raft")

    zone_map = ZoneMap.federate(dep.cluster, zones=zones)
    candidates = [n.name for n in dep.cluster.storage_nodes()]
    candidates += [n.name for n in dep.cluster.compute_nodes()]
    members = zone_map.spread(candidates, replicas)
    witness_members = tuple(members[-witnesses:]) if witnesses else ()
    group = RaftGroup(
        dep.env, members, dep.rng, zone_of=zone_map.zone_of,
        witnesses=witness_members,
    )
    group.start()
    store = make_metadata_store(dep.env, "raft", group)

    def run_ranks(rank_main: Callable) -> List[Any]:
        mpi_job = dep.run_job(
            job, plan, rank_main, config=run_config,
            global_namespace=global_namespace, on_complete=group.stop,
        )
        return mpi_job.results()

    return SystemHandle(
        env=dep.env, deployment=dep, _run_ranks=run_ranks,
        extras={
            "job": job, "plan": plan, "config": run_config,
            "group": group, "store": store, "zones": zone_map,
        },
    )


@register(
    "nvmecr-tiered", title="NVMe-CR (tiered)", short="nvmecr-t", kind="runtime",
    description="NVMe-CR plus calibrated NVM/CXL fast tiers and cost-model placement",
)
def _build_nvmecr_tiered(
    *,
    nprocs: int,
    seed: int = 0,
    devices: Optional[int] = None,
    bytes_per_device: int = GiB(2),
    config: Optional[RuntimeConfig] = None,
    global_namespace: Any = None,
    job_name: str = "job",
    deployment: Any = None,
    fast_tier: str = "nvm",
) -> SystemHandle:
    """The nvmecr runtime with extra byte-addressable fast tiers.

    A calibrated NVM module (and a CXL-SSD when ``fast_tier="cxl"``)
    joins the job's storage inventory through the balancer; the run
    config requests cost-model checkpoint placement.  The NVMe data
    plane is byte-for-byte the nvmecr builder's — the tier devices only
    add capacity above it.  ``extras`` carries the devices and the
    :class:`~repro.tiers.client.TierSet` inventory.
    """
    from repro.apps.deployment import Deployment
    from repro.tiers import CXLSSDDevice, NVMDevice, TierSet

    if fast_tier not in ("nvm", "cxl"):
        raise ValueError(f"fast_tier must be 'nvm' or 'cxl', got {fast_tier!r}")

    dep = deployment if deployment is not None else Deployment(seed=seed)
    tiers = TierSet("job-tiers")
    fast: Any
    if fast_tier == "nvm":
        fast = NVMDevice(dep.env, name="nvm0")
    else:
        fast = CXLSSDDevice(dep.env, name="cxl0")
    tiers.add(fast)
    dep.balancer.attach_tier_device(fast)
    job, plan = dep.submit(
        job_name, nprocs=nprocs, devices=devices or 8,
        bytes_per_device=bytes_per_device,
    )
    run_config = (config or RuntimeConfig()).with_(
        checkpoint_placement="cost-model"
    )

    def run_ranks(rank_main: Callable) -> List[Any]:
        mpi_job = dep.run_job(
            job, plan, rank_main, config=run_config,
            global_namespace=global_namespace,
        )
        return mpi_job.results()

    return SystemHandle(
        env=dep.env, deployment=dep, _run_ranks=run_ranks,
        extras={
            "job": job, "plan": plan, "config": run_config,
            "tiers": tiers, "fast_device": fast,
        },
    )


# ---------------------------------------------------------------------------
# Standalone MicroFS fleets (single node, figures 7(a)/7(c)/8(a))
# ---------------------------------------------------------------------------


def _build_fleet(remote: bool, **kwargs: Any) -> SystemHandle:
    from repro.bench.fleet import MicroFSFleet

    fleet = MicroFSFleet(remote=remote, **kwargs)
    return SystemHandle(
        env=fleet.env, cluster=fleet, clients=list(fleet.clients),
        extras={"ssds": [fleet.ssd], "fleet": fleet},
    )


@register(
    "microfs", title="MicroFS (local)", short="mfs", kind="local",
    description="standalone MicroFS instances over one local SSD",
)
def _build_microfs(**kwargs: Any) -> SystemHandle:
    return _build_fleet(False, **kwargs)


@register(
    "microfs-remote", title="MicroFS (NVMf)", short="mfsr", kind="local",
    description="standalone MicroFS instances over one NVMf-remote SSD",
)
def _build_microfs_remote(**kwargs: Any) -> SystemHandle:
    return _build_fleet(True, **kwargs)


# ---------------------------------------------------------------------------
# Distributed baselines over the testbed deployment
# ---------------------------------------------------------------------------


def _deployment_for(seed: int, deployment: Any) -> Any:
    from repro.apps.deployment import Deployment

    return deployment if deployment is not None else Deployment(seed=seed)


@register(
    "orangefs", title="OrangeFS", short="ofs", kind="distributed",
    description="striping + metadata servers + layered server stack",
)
def _build_orangefs(
    *, nprocs: int, namespace_bytes: int, seed: int = 0, deployment: Any = None
) -> SystemHandle:
    from repro.baselines.orangefs import OrangeFSCluster

    dep = _deployment_for(seed, deployment)
    cluster = OrangeFSCluster(dep, namespace_bytes)
    clients = [cluster.client(f"r{i}") for i in range(nprocs)]
    return SystemHandle(env=dep.env, deployment=dep, cluster=cluster, clients=clients)


@register(
    "glusterfs", title="GlusterFS", short="gfs", kind="distributed",
    description="jump-consistent-hash placement, serialised dir entries",
)
def _build_glusterfs(
    *, nprocs: int, namespace_bytes: int, seed: int = 0, deployment: Any = None
) -> SystemHandle:
    from repro.baselines.glusterfs import GlusterFSCluster

    dep = _deployment_for(seed, deployment)
    cluster = GlusterFSCluster(dep, namespace_bytes)
    clients = [cluster.client(f"r{i}") for i in range(nprocs)]
    return SystemHandle(env=dep.env, deployment=dep, cluster=cluster, clients=clients)


@register(
    "crail", title="Crail", short="crail", kind="distributed",
    description="SPDK data plane behind a single metadata server",
)
def _build_crail(
    *,
    nprocs: int,
    namespace_bytes: int,
    seed: int = 0,
    client_node: str = "comp00",
    deployment: Any = None,
) -> SystemHandle:
    from repro.baselines.crail import CrailCluster

    dep = _deployment_for(seed, deployment)
    cluster = CrailCluster(dep, namespace_bytes)
    clients = [cluster.client(f"c{i}", client_node) for i in range(nprocs)]
    return SystemHandle(env=dep.env, deployment=dep, cluster=cluster, clients=clients)


@register(
    "lustre", title="Lustre", short="pfs", kind="distributed",
    description="the level-2 PFS tier: 4 OSSes behind RAID, durable",
)
def _build_lustre(
    *,
    nprocs: int,
    seed: int = 0,
    namespace_bytes: int = 0,  # accepted for matrix parity; capacity-unbounded
    servers: Optional[int] = None,
    env: Optional[Environment] = None,
) -> SystemHandle:
    from repro.baselines.lustre import LustreCluster

    env = env if env is not None else Environment()
    kwargs = {} if servers is None else {"servers": servers}
    cluster = LustreCluster(env, **kwargs)
    clients = [cluster.client(f"r{i}") for i in range(nprocs)]
    return SystemHandle(env=env, cluster=cluster, clients=clients)


@register(
    "burstfs", title="BurstFS", short="bb", kind="distributed",
    description="node-local burst buffers + PFS drain (BurstFS/UnifyFS-class)",
)
def _build_burstfs(
    *, nprocs: int, namespace_bytes: int = GiB(64), seed: int = 0
) -> SystemHandle:
    from repro.baselines.burstfs import BurstBufferCluster

    env = Environment()
    nodes = [f"comp{i:02d}" for i in range(nprocs)]
    cluster = BurstBufferCluster(
        env, nodes, namespace_bytes=namespace_bytes, seed=seed
    )
    clients = [cluster.client(f"r{i}", nodes[i]) for i in range(nprocs)]
    return SystemHandle(
        env=env, cluster=cluster, clients=clients,
        extras={"ssds": list(cluster.node_ssds.values())},
    )


# ---------------------------------------------------------------------------
# Single-SSD kernel filesystems and raw SPDK (figure 7(c))
# ---------------------------------------------------------------------------


def _build_kernel_fs(
    variant: str, *, nprocs: int, bytes_per_client: int, seed: int = 0
) -> SystemHandle:
    from repro.baselines.posixfs import KernelFilesystem
    from repro.nvme.device import SSD, intel_p4800x

    env = Environment()
    ssd = SSD(env, intel_p4800x(), "nvme0", rng=np.random.default_rng(seed))
    ns = ssd.create_namespace(bytes_per_client * nprocs, owner_job=variant)
    kfs = KernelFilesystem(env, ssd, ns, variant)
    clients = [kfs.client(f"c{i}") for i in range(nprocs)]
    return SystemHandle(
        env=env, cluster=kfs, clients=clients, extras={"ssds": [ssd]}
    )


@register(
    "xfs", title="XFS", short="xfs", kind="kernel",
    description="kernel data path: trap + VFS + page cache, XFS journaling",
)
def _build_xfs(**kwargs: Any) -> SystemHandle:
    return _build_kernel_fs("xfs", **kwargs)


@register(
    "ext4", title="ext4", short="ext4", kind="kernel",
    description="kernel data path: trap + VFS + page cache, ext4 journaling",
)
def _build_ext4(**kwargs: Any) -> SystemHandle:
    return _build_kernel_fs("ext4", **kwargs)


@register(
    "spdk", title="raw SPDK", short="spdk", kind="local",
    description="raw SPDK bdev access, no filesystem (lower bound)",
)
def _build_spdk(
    *, nprocs: int, bytes_per_client: int, seed: int = 0
) -> SystemHandle:
    from repro.baselines.spdk import RawSPDKClient
    from repro.fabric.transport import LocalPCIeTransport
    from repro.nvme.device import SSD, intel_p4800x

    env = Environment()
    ssd = SSD(env, intel_p4800x(), "nvme0", rng=np.random.default_rng(seed))
    ns = ssd.create_namespace(bytes_per_client * nprocs, owner_job="spdk")
    region = ns.nbytes // nprocs
    clients = [
        RawSPDKClient(
            env, LocalPCIeTransport(env, ssd), ns.nsid,
            i * region, region, name=f"spdk{i}",
        )
        for i in range(nprocs)
    ]
    return SystemHandle(env=env, clients=clients, extras={"ssds": [ssd]})
