"""Storage-system registry: every comparable backend under one name.

The evaluation compares NVMe-CR against seven baseline storage systems,
plus standalone MicroFS fleets for the single-node figures. Before this
registry each experiment hand-wired the subset it compared, so adding a
backend to a figure meant editing the figure. Now each system registers
one *builder* producing a :class:`SystemHandle` — a uniform facade over
"a deployed storage system with ``nprocs`` shim-compatible clients" —
and experiments take a ``systems=(...)`` tuple of names.

Builders are keyword-only and accept the same provisioning overrides the
experiments used to pass to the underlying constructors, so a registry
build is bit-for-bit identical to the hand-wired object graph it
replaced (same construction order, same seeds, same client names).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import UnknownSystem
from repro.sim.engine import Environment

__all__ = ["SystemSpec", "SystemHandle", "register", "get", "names", "specs",
           "build", "build_shards", "split_ranks"]


@dataclass(frozen=True)
class SystemSpec:
    """One registered storage system."""

    name: str
    title: str  # display label, e.g. "NVMe-CR"
    short: str  # column-name fragment, e.g. "ofs"
    kind: str  # "runtime" | "distributed" | "kernel" | "local"
    description: str
    builder: Callable[..., "SystemHandle"]

    def build(self, **kwargs: Any) -> "SystemHandle":
        handle = self.builder(**kwargs)
        handle.spec = self
        from repro.obs.context import attach

        handle.obs = attach(handle.env, label=self.name)
        from repro.analysis.sanitize import attach_if_active

        attach_if_active(handle.env, label=self.name)
        return handle


@dataclass
class SystemHandle:
    """A deployed storage system, ready to serve ``nprocs`` ranks.

    ``clients`` holds one shim-compatible client per rank for systems a
    workload drives directly; runtime-managed systems (the full NVMe-CR
    runtime, whose shims only exist inside ``MPI_Init``/``Finalize``)
    leave it ``None`` and provide ``_run_ranks`` instead.
    """

    env: Environment
    deployment: Any = None  # apps.deployment.Deployment, when testbed-backed
    cluster: Any = None  # the baseline cluster / fleet / filesystem object
    clients: Optional[List[Any]] = None
    spec: Optional[SystemSpec] = None
    _run_ranks: Optional[Callable[[Callable], List[Any]]] = None
    extras: Dict[str, Any] = field(default_factory=dict)
    obs: Any = None  # repro.obs.ObsContext, attached by SystemSpec.build()

    # -- drivers ----------------------------------------------------------

    def run_ranks(self, rank_main: Callable) -> List[Any]:
        """Run ``rank_main(shim, comm)`` on every rank; per-rank returns.

        Client-backed systems launch simulated MPI ranks over their
        clients; the NVMe-CR runtime routes through the scheduler's
        ``run_job`` (MPI_Init/Finalize wrap the rank body there).
        """
        if self._run_ranks is not None:
            return self._run_ranks(rank_main)
        if self.clients is None:
            raise UnknownSystem(f"{self.name}: no clients and no rank driver")
        from repro.mpi.runtime import launch

        clients = self.clients

        def main(comm):
            return (yield from rank_main(clients[comm.rank], comm))

        mpi_job = launch(self.env, len(clients), main)
        self.env.run()
        if mpi_job.done.triggered:
            mpi_job.done.value  # re-raises if any rank failed
        return mpi_job.results()

    def makespan(self, work: Callable) -> float:
        """Drive ``work(i, client)`` on every client; max finish - start."""
        if self.clients is None:
            raise UnknownSystem(
                f"{self.name}: runtime-managed system has no standalone "
                "clients; use run_ranks()"
            )
        from repro.bench.harness import parallel_clients

        return parallel_clients(self.env, self.clients, work)

    # -- measurement ------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name if self.spec is not None else "<unregistered>"

    def load_per_server(self) -> List[float]:
        """Stored-byte load per storage server (Figure 7(b)'s input)."""
        if self.cluster is not None and hasattr(self.cluster, "bytes_per_server"):
            return list(self.cluster.bytes_per_server())
        if self.deployment is not None:
            return list(self.deployment.bytes_per_server())
        raise UnknownSystem(f"{self.name}: no per-server load accounting")

    def metadata_bytes_per_server(self) -> float:
        if self.cluster is not None and hasattr(
            self.cluster, "metadata_bytes_per_server"
        ):
            return self.cluster.metadata_bytes_per_server()
        raise UnknownSystem(f"{self.name}: no metadata accounting")

    def aggregate_write_bandwidth(self) -> float:
        if self.deployment is not None:
            return self.deployment.aggregate_write_bandwidth()
        ssds = self.extras.get("ssds")
        if ssds:
            return sum(ssd.spec.write_bandwidth for ssd in ssds)
        if self.cluster is not None and hasattr(self.cluster, "aggregate_bandwidth"):
            return self.cluster.aggregate_bandwidth()  # PFS tier: RAID pipes
        raise UnknownSystem(f"{self.name}: no device inventory")

    def aggregate_read_bandwidth(self) -> float:
        if self.deployment is not None:
            return self.deployment.aggregate_read_bandwidth()
        ssds = self.extras.get("ssds")
        if ssds:
            return sum(ssd.spec.read_bandwidth for ssd in ssds)
        if self.cluster is not None and hasattr(self.cluster, "aggregate_bandwidth"):
            return self.cluster.aggregate_bandwidth()
        raise UnknownSystem(f"{self.name}: no device inventory")


_REGISTRY: Dict[str, SystemSpec] = {}


def register(
    name: str, *, title: str, short: str, kind: str, description: str
) -> Callable[[Callable[..., SystemHandle]], Callable[..., SystemHandle]]:
    """Decorator: register ``builder(**kwargs) -> SystemHandle`` as ``name``."""

    def decorate(builder: Callable[..., SystemHandle]) -> Callable[..., SystemHandle]:
        if name in _REGISTRY:
            raise UnknownSystem(f"duplicate system registration: {name!r}")
        _REGISTRY[name] = SystemSpec(
            name=name, title=title, short=short, kind=kind,
            description=description, builder=builder,
        )
        return builder

    return decorate


def get(name: str) -> SystemSpec:
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownSystem(f"unknown storage system {name!r}; known: {known}")
    return spec


def names() -> List[str]:
    return sorted(_REGISTRY)


def specs() -> List[SystemSpec]:
    return [_REGISTRY[n] for n in names()]


def build(name: str, **kwargs: Any) -> SystemHandle:
    """Build a registered system: ``build("glusterfs", nprocs=28, ...)``."""
    return get(name).build(**kwargs)


def split_ranks(nprocs: int, shards: int) -> List[int]:
    """Deterministic near-even split of ``nprocs`` ranks across shards.

    Early shards take the remainder, so sizes differ by at most one and
    the mapping depends only on the two integers.  Shards beyond
    ``nprocs`` get zero ranks (and :func:`build_shards` skips them).
    """
    if shards < 1:
        raise UnknownSystem(f"shards must be >= 1, got {shards}")
    base, extra = divmod(nprocs, shards)
    return [base + (1 if s < extra else 0) for s in range(shards)]


def build_shards(
    name: str, shards: int, *, nprocs: int, seed: int = 0,
    shard_seed_stride: int = 65537, **kwargs: Any
) -> List[SystemHandle]:
    """Build one :class:`SystemHandle` per shard for a partitioned fleet.

    Each shard gets its own environment, a near-even contiguous block of
    ranks (:func:`split_ranks`), and an independent seed stream
    (``seed * shard_seed_stride + shard`` — collision-free for the int
    seeds the builders take), so shards simulate independently and a
    :class:`~repro.sim.shard.ShardCoordinator` or the multi-process
    executor can drive them.  The shard index and rank offset land in
    ``handle.extras`` for workloads that need globally unique rank
    names.  Failure-domain-aware topology partitioning lives in
    :func:`repro.topology.failure_domains.partition_nodes`; deployments
    built per shard here are whole fleets in miniature, so every blast
    radius is shard-local by construction.
    """
    sizes = split_ranks(nprocs, shards)
    handles: List[SystemHandle] = []
    offset = 0
    for shard, size in enumerate(sizes):
        if size == 0:
            continue
        handle = build(name, nprocs=size,
                       seed=seed * shard_seed_stride + shard, **kwargs)
        handle.extras["shard"] = shard
        handle.extras["shards"] = shards
        handle.extras["rank_offset"] = offset
        offset += size
        handles.append(handle)
    return handles
