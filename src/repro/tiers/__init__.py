"""Pluggable calibrated storage tiers behind one device-model seam.

Every persistence target the runtime can place a checkpoint on — the
NVMe SSD fleet, byte-addressable NVM, a CXL-SSD, the PFS — implements
the :class:`~repro.tiers.base.DeviceModel` surface, so the balancer,
the data plane, and the placement policies reason about heterogeneous
tiers uniformly. Calibration constants live in
:mod:`repro.bench.calibration`; nothing in this package hard-codes a
performance number.
"""

from repro.tiers.base import DeviceModel, TierKind
from repro.tiers.client import PosixTierAdapter, TierClient, TierSet
from repro.tiers.cxl import CXLSSDDevice
from repro.tiers.nvm import NVMDevice

__all__ = [
    "CXLSSDDevice",
    "DeviceModel",
    "NVMDevice",
    "PosixTierAdapter",
    "TierClient",
    "TierKind",
    "TierSet",
]
