"""The tier-neutral device seam.

:class:`DeviceModel` is the contract every storage tier implements: a
capacity/bandwidth inventory surface (what the balancer sums per tier)
plus timed bulk transfers (what tier clients and placement policies
drive). It deliberately models *service time*, not data contents —
the NVMe extent store keeps doing byte-accurate bookkeeping on its own
paths; a tier transfer answers only "when does this many bytes land".

Implementations:

* :class:`repro.nvme.device.SSD` — the calibrated NVMe model, whose
  service-time core (fair-share media + command-rate servers, QD-1
  access-latency cap, arbitration jitter) this seam was extracted from;
* :class:`repro.tiers.nvm.NVMDevice` — byte-addressable NVM (JASS-style
  load/store latency, no command or queue overhead);
* :class:`repro.tiers.cxl.CXLSSDDevice` — a CXL-SSD (OpenCXD-style
  load/store window + device-side cache hit/miss model).

This module is on DetLint's hot-module list: every class declares
``__slots__``.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.sim.engine import Event

__all__ = ["DeviceModel", "TierKind"]


class TierKind(enum.Enum):
    """The device classes a checkpoint can land on."""

    __slots__ = ()

    NVM = "nvm"
    NVME_SSD = "nvme-ssd"
    CXL_SSD = "cxl-ssd"
    PFS = "pfs"


class DeviceModel:
    """Abstract tier surface: inventory + timed transfers.

    Stateless base (``__slots__ = ()``): concrete tiers own their
    attributes. ``kind`` is a class attribute naming the tier class;
    instances expose it as :attr:`tier_name` for accounting keys.
    """

    __slots__ = ()

    kind: TierKind = TierKind.NVME_SSD

    # -- identity / inventory -------------------------------------------------

    @property
    def tier_name(self) -> str:
        """Stable accounting key, e.g. ``"nvm"`` or ``"nvme-ssd"``."""
        return self.kind.value

    def capacity_bytes(self) -> int:
        raise NotImplementedError

    def free_bytes(self) -> int:
        raise NotImplementedError

    def write_bandwidth(self) -> float:
        """Sustained ingest bandwidth, bytes/s."""
        raise NotImplementedError

    def read_bandwidth(self) -> float:
        raise NotImplementedError

    # -- timed transfers ------------------------------------------------------

    def tier_write(
        self, offset: int, nbytes: int, qos: Optional[object] = None
    ) -> Event:
        """Persist ``nbytes`` at ``offset``; completion event fires when
        the data is durable under the tier's own service model."""
        raise NotImplementedError

    def tier_read(
        self, offset: int, nbytes: int, qos: Optional[object] = None
    ) -> Event:
        raise NotImplementedError

    def tier_sync(self) -> Event:
        """Durability barrier (flush / persist fence), tier-specific."""
        raise NotImplementedError
