"""Tier clients: the ``write_file``/``read_file`` checkpoint surface.

:class:`~repro.core.multilevel.MultiLevelCheckpointer` drives every
tier beyond the intercepted-POSIX level through the same two-method
surface :class:`repro.baselines.lustre.LustreCluster` established.
This module provides that surface over any :class:`DeviceModel`
(:class:`TierClient`), over an intercepted-POSIX shim
(:class:`PosixTierAdapter`), and a :class:`TierSet` describing a whole
tier hierarchy for the systems registry and the balancer inventory.

This module is on DetLint's hot-module list: every class declares
``__slots__``.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.errors import FileNotFound, OutOfSpace
from repro.sim.engine import Event
from repro.tiers.base import DeviceModel

__all__ = ["PosixTierAdapter", "TierClient", "TierSet"]


class TierClient:
    """File-shaped checkpoint I/O over one tier device.

    A bump allocator maps paths onto device regions (checkpoint files
    are written whole and re-read whole; there is no partial rewrite),
    so the device's cache/locality model sees stable addresses.
    """

    __slots__ = ("device", "name", "files", "_cursor")

    def __init__(self, device: DeviceModel, name: str = "tier"):
        self.device = device
        self.name = name
        self.files: Dict[str, Tuple[int, int]] = {}
        self._cursor = 0

    @property
    def env(self):
        return self.device.env

    def _alloc(self, path: str, nbytes: int) -> int:
        existing = self.files.get(path)
        if existing is not None and existing[1] >= nbytes:
            return existing[0]
        if self._cursor + nbytes > self.device.capacity_bytes():
            raise OutOfSpace(
                f"{self.name}: {nbytes} bytes of checkpoint exceed tier capacity"
            )
        offset = self._cursor
        self._cursor += nbytes
        return offset

    def write_file(self, path: str, nbytes: int) -> Generator[Event, Any, None]:
        offset = self._alloc(path, nbytes)
        yield self.device.tier_write(offset, nbytes)
        self.files[path] = (offset, nbytes)

    def read_file(self, path: str) -> Generator[Event, Any, int]:
        entry = self.files.get(path)
        if entry is None:
            raise FileNotFound(path)
        offset, nbytes = entry
        yield self.device.tier_read(offset, nbytes)
        return nbytes

    def lose_data(self) -> None:
        """Fault hook: the tier's contents are gone (node/domain loss)."""
        self.files.clear()


class PosixTierAdapter:
    """``write_file``/``read_file`` over an intercepted-POSIX shim.

    Lets the NVMe-CR runtime path (a :class:`PosixShim` over the NVMf
    partner domain) sit in a tier list next to device-backed clients.
    """

    __slots__ = ("shim", "files", "_dir_made", "directory")

    def __init__(self, shim: Any, directory: str = "/ckpt"):
        self.shim = shim
        self.directory = directory
        self.files: Dict[str, int] = {}
        self._dir_made = False

    @property
    def env(self):
        runtime = getattr(self.shim, "runtime", None)
        if runtime is not None:
            return runtime.env
        return self.shim.env

    def write_file(self, path: str, nbytes: int) -> Generator[Event, Any, None]:
        if not self._dir_made:
            from repro.errors import FileExists

            try:
                yield from self.shim.mkdir(self.directory)
            except FileExists:
                pass
            self._dir_made = True
        fd = yield from self.shim.open(path, "w")
        yield from self.shim.write(fd, nbytes)
        yield from self.shim.fsync(fd)
        yield from self.shim.close(fd)
        self.files[path] = nbytes

    def read_file(self, path: str) -> Generator[Event, Any, int]:
        nbytes = self.files.get(path)
        if nbytes is None:
            raise FileNotFound(path)
        fd = yield from self.shim.open(path, "r")
        yield from self.shim.read(fd, nbytes)
        yield from self.shim.close(fd)
        return nbytes

    def lose_data(self) -> None:
        self.files.clear()


class TierSet:
    """An ordered tier hierarchy (fastest first) for one system.

    Carried in a system handle's ``extras["tiers"]`` — experiments
    append per-rank tiers (the runtime shim, the PFS) and hand the
    result to the checkpointer; the balancer sums :meth:`inventory`.
    """

    __slots__ = ("name", "devices")

    def __init__(self, name: str, devices: Optional[List[DeviceModel]] = None):
        self.name = name
        self.devices: List[DeviceModel] = list(devices or [])

    def add(self, device: DeviceModel) -> None:
        self.devices.append(device)

    def inventory(self) -> Dict[str, Dict[str, float]]:
        """Per-tier capacity and bandwidth totals."""
        out: Dict[str, Dict[str, float]] = {}
        for dev in self.devices:
            row = out.setdefault(dev.tier_name, {
                "devices": 0,
                "capacity_bytes": 0,
                "free_bytes": 0,
                "write_bandwidth": 0.0,
                "read_bandwidth": 0.0,
            })
            row["devices"] += 1
            row["capacity_bytes"] += dev.capacity_bytes()
            row["free_bytes"] += dev.free_bytes()
            row["write_bandwidth"] += dev.write_bandwidth()
            row["read_bandwidth"] += dev.read_bandwidth()
        return out
