"""CXL-SSD tier (OpenCXD-style, arXiv:2508.11477).

A flash device exposed through a CXL.mem load/store window with a
device-side DRAM cache in front of the NAND backend:

* every window access pays one CXL link round trip and streams over
  the link into (or out of) the device cache;
* reads are split per 4 KiB cache line into **hits** (served from
  device DRAM at link speed) and **misses** (a flash-page fill penalty
  plus the flash read stream) by a deterministic LRU over the cache;
* writes land in the cache at link speed and drain to flash through a
  token bucket refilled at the flash program rate — the same
  burst/drain shape as a capacitor-backed NVMe SSD's RAM buffer.

All constants come from :mod:`repro.bench.calibration` (``CXL_*``).
This module is on DetLint's hot-module list: every class declares
``__slots__``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Generator, Optional

from repro.bench import calibration as cal
from repro.errors import OutOfSpace
from repro.obs.metrics import Counter
from repro.sim.engine import Environment, Event
from repro.sim.fairshare import FairShareServer
from repro.tiers.base import DeviceModel, TierKind

__all__ = ["CXLSSDDevice"]


class CXLSSDDevice(DeviceModel):  # reproflow: ignore[FLOW103] (runtime sanitizer watches devices)
    """One CXL-attached flash device behind the tier seam."""

    __slots__ = (
        "env",
        "name",
        "_capacity",
        "_reserved",
        "_link_server",
        "_flash_read_server",
        "_cache",
        "_cache_lines",
        "_tokens",
        "_tokens_at",
        "counters",
    )

    kind = TierKind.CXL_SSD

    def __init__(
        self,
        env: Environment,
        name: str = "cxl0",
        capacity_bytes: Optional[int] = None,
        cache_bytes: Optional[int] = None,
    ):
        self.env = env
        self.name = name
        self._capacity = (
            cal.CXL_CAPACITY_BYTES if capacity_bytes is None else capacity_bytes
        )
        self._reserved = 0
        self._link_server = FairShareServer(
            env, capacity=cal.CXL_LINK_BANDWIDTH, name=f"{name}.link"
        )
        self._flash_read_server = FairShareServer(
            env, capacity=cal.CXL_FLASH_READ_BANDWIDTH, name=f"{name}.flash"
        )
        #: LRU of resident cache-line indices (insertion order = age).
        self._cache: "OrderedDict[int, None]" = OrderedDict()
        cache = cal.CXL_CACHE_BYTES if cache_bytes is None else cache_bytes
        self._cache_lines = max(1, cache // cal.CXL_CACHE_LINE_BYTES)
        # Write-back token bucket: burst at link speed until the cache's
        # dirty budget is spent, then drain at flash program rate.
        self._tokens = float(cache)
        self._tokens_at = env.now
        self.counters = Counter()

    # -- inventory ------------------------------------------------------------

    def capacity_bytes(self) -> int:
        return self._capacity

    def free_bytes(self) -> int:
        return self._capacity - self._reserved

    def write_bandwidth(self) -> float:
        return cal.CXL_FLASH_WRITE_BANDWIDTH

    def read_bandwidth(self) -> float:
        return cal.CXL_FLASH_READ_BANDWIDTH

    def reserve(self, nbytes: int) -> None:
        if nbytes > self.free_bytes():
            raise OutOfSpace(
                f"{self.name}: need {nbytes} bytes, only {self.free_bytes()} free"
            )
        self._reserved += nbytes

    def release(self, nbytes: int) -> None:
        self._reserved = max(0, self._reserved - nbytes)

    # -- device-side cache ----------------------------------------------------

    def _lines_of(self, offset: int, nbytes: int) -> range:
        line = cal.CXL_CACHE_LINE_BYTES
        if nbytes <= 0:
            return range(0)
        return range(offset // line, (offset + nbytes - 1) // line + 1)

    def _touch(self, offset: int, nbytes: int) -> int:
        """Install the range's lines (LRU evict); returns miss count."""
        misses = 0
        for idx in self._lines_of(offset, nbytes):
            if idx in self._cache:
                self._cache.move_to_end(idx)
            else:
                misses += 1
                self._cache[idx] = None
                if len(self._cache) > self._cache_lines:
                    self._cache.popitem(last=False)
        return misses

    def cache_residency(self, offset: int, nbytes: int) -> float:
        """Fraction of the range's lines resident (observability)."""
        lines = self._lines_of(offset, nbytes)
        if not len(lines):
            return 1.0
        hits = sum(1 for idx in lines if idx in self._cache)
        return hits / len(lines)

    # -- write-back token bucket ----------------------------------------------

    def _take_tokens(self, nbytes: float) -> float:
        now = self.env.now
        budget = self._cache_lines * cal.CXL_CACHE_LINE_BYTES
        refill = (now - self._tokens_at) * cal.CXL_FLASH_WRITE_BANDWIDTH
        self._tokens = min(float(budget), self._tokens + refill)
        self._tokens_at = now
        if self._tokens >= nbytes:
            self._tokens -= nbytes
            return 0.0
        deficit = nbytes - self._tokens
        self._tokens = 0.0
        return deficit / cal.CXL_FLASH_WRITE_BANDWIDTH

    # -- timed transfers ------------------------------------------------------

    def tier_write(
        self, offset: int, nbytes: int, qos: Optional[object] = None
    ) -> Event:
        return self.env.process(self._store(offset, nbytes))

    def _store(self, offset: int, nbytes: int) -> Generator[Event, Any, int]:
        yield self.env.timeout(cal.CXL_LINK_LATENCY)
        if nbytes > 0:
            yield self._link_server.transfer(nbytes)
        drain = self._take_tokens(nbytes)
        if drain > 0:
            yield self.env.timeout(drain)
        self._touch(offset, nbytes)
        self.counters.add("bytes_written", nbytes)
        return nbytes

    def tier_read(
        self, offset: int, nbytes: int, qos: Optional[object] = None
    ) -> Event:
        return self.env.process(self._load(offset, nbytes))

    def _load(self, offset: int, nbytes: int) -> Generator[Event, Any, int]:
        yield self.env.timeout(cal.CXL_LINK_LATENCY)
        lines = self._lines_of(offset, nbytes)
        hit_lines = sum(1 for idx in lines if idx in self._cache)
        miss_lines = len(lines) - hit_lines
        misses_installed = self._touch(offset, nbytes)
        line = cal.CXL_CACHE_LINE_BYTES
        miss_bytes = min(nbytes, miss_lines * line)
        hit_bytes = nbytes - miss_bytes
        if miss_bytes > 0:
            # One fill penalty opens the flash stream; sequential pages
            # behind it are prefetched at flash read bandwidth.
            yield self.env.timeout(cal.CXL_MISS_LATENCY)
            yield self._flash_read_server.transfer(miss_bytes)
        if hit_bytes > 0:
            yield self._link_server.transfer(hit_bytes)
        self.counters.add("bytes_read", nbytes)
        self.counters.add("cache_hits", hit_lines)
        self.counters.add("cache_misses", misses_installed)
        return nbytes

    def tier_sync(self) -> Event:
        return self.env.process(self._drain())

    def _drain(self) -> Generator[Event, Any, None]:
        # Refill the bucket to "now", then wait for the dirty backlog
        # (the spent budget) to finish draining at flash program rate.
        self._take_tokens(0.0)
        budget = self._cache_lines * cal.CXL_CACHE_LINE_BYTES
        backlog = budget - self._tokens
        drain = backlog / cal.CXL_FLASH_WRITE_BANDWIDTH
        yield self.env.timeout(max(drain, cal.CXL_LINK_LATENCY))
        self._tokens = float(budget)
        self._tokens_at = self.env.now
