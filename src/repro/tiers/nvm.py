"""Byte-addressable NVM tier (JASS-style, arXiv:2301.11511).

Optane DC PMM-class persistent memory on the node's memory bus: loads
and stores pay a per-access latency and stream at asymmetric
read/write bandwidth through fair-share servers, but there is *no*
command processing, no hardware queue, and no arbitration jitter —
the properties that make NVM the cheapest checkpoint tier per byte and
the least durable one (it dies with the node).

All constants come from :mod:`repro.bench.calibration` (``NVM_*``).
This module is on DetLint's hot-module list: every class declares
``__slots__``.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.bench import calibration as cal
from repro.errors import OutOfSpace
from repro.obs.metrics import Counter
from repro.sim.engine import Environment, Event
from repro.sim.fairshare import FairShareServer
from repro.tiers.base import DeviceModel, TierKind

__all__ = ["NVMDevice"]


class NVMDevice(DeviceModel):  # reproflow: ignore[FLOW103] (runtime sanitizer watches devices)
    """One node's persistent-memory module set behind the tier seam."""

    __slots__ = (
        "env",
        "name",
        "_capacity",
        "_reserved",
        "_write_server",
        "_read_server",
        "counters",
    )

    kind = TierKind.NVM

    def __init__(
        self,
        env: Environment,
        name: str = "nvm0",
        capacity_bytes: Optional[int] = None,
    ):
        self.env = env
        self.name = name
        self._capacity = (
            cal.NVM_CAPACITY_BYTES if capacity_bytes is None else capacity_bytes
        )
        self._reserved = 0
        self._write_server = FairShareServer(
            env, capacity=cal.NVM_WRITE_BANDWIDTH, name=f"{name}.store"
        )
        self._read_server = FairShareServer(
            env, capacity=cal.NVM_READ_BANDWIDTH, name=f"{name}.load"
        )
        self.counters = Counter()

    # -- inventory ------------------------------------------------------------

    def capacity_bytes(self) -> int:
        return self._capacity

    def free_bytes(self) -> int:
        return self._capacity - self._reserved

    def write_bandwidth(self) -> float:
        return cal.NVM_WRITE_BANDWIDTH

    def read_bandwidth(self) -> float:
        return cal.NVM_READ_BANDWIDTH

    def reserve(self, nbytes: int) -> None:
        """Account a region allocation (tier clients call this)."""
        if nbytes > self.free_bytes():
            raise OutOfSpace(
                f"{self.name}: need {nbytes} bytes, only {self.free_bytes()} free"
            )
        self._reserved += nbytes

    def release(self, nbytes: int) -> None:
        self._reserved = max(0, self._reserved - nbytes)

    # -- timed transfers ------------------------------------------------------

    def tier_write(
        self, offset: int, nbytes: int, qos: Optional[object] = None
    ) -> Event:
        return self.env.process(self._store(nbytes))

    def _store(self, nbytes: int) -> Generator[Event, Any, int]:
        # Store into the ADR-protected write-pending queue, stream the
        # body at the DIMM program rate, then persist (CLWB + fence).
        yield self.env.timeout(cal.NVM_WRITE_LATENCY)
        if nbytes > 0:
            yield self._write_server.transfer(nbytes)
        yield self.env.timeout(cal.NVM_PERSIST_BARRIER)
        self.counters.add("bytes_written", nbytes)
        return nbytes

    def tier_read(
        self, offset: int, nbytes: int, qos: Optional[object] = None
    ) -> Event:
        return self.env.process(self._load(nbytes))

    def _load(self, nbytes: int) -> Generator[Event, Any, int]:
        yield self.env.timeout(cal.NVM_READ_LATENCY)
        if nbytes > 0:
            yield self._read_server.transfer(nbytes)
        self.counters.add("bytes_read", nbytes)
        return nbytes

    def tier_sync(self) -> Event:
        return self.env.process(self._fence())

    def _fence(self) -> Generator[Event, Any, None]:
        yield self.env.timeout(cal.NVM_PERSIST_BARRIER)
