"""Cluster, network, and failure-domain models.

The storage balancer (§III-F of the paper) needs three things from the
platform: which nodes share hardware (failure domains), how many switch
hops separate any two domains, and which nodes hold SSDs. This package
provides exactly that, including a one-call builder for the paper's
testbed (one 8-node storage rack + one 16-node compute rack on EDR IB).
"""

from repro.topology.cluster import ClusterSpec, Node, NodeKind, Rack, paper_testbed
from repro.topology.failure_domains import FailureDomain, derive_failure_domains, partner_domains
from repro.topology.network import NetworkTopology
from repro.topology.zones import Zone, ZoneMap

__all__ = [
    "ClusterSpec",
    "FailureDomain",
    "NetworkTopology",
    "Node",
    "NodeKind",
    "Rack",
    "Zone",
    "ZoneMap",
    "derive_failure_domains",
    "paper_testbed",
    "partner_domains",
]
