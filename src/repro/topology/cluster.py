"""Cluster hardware description.

Models the testbed of §IV-A: nodes with a core count and memory, grouped
into racks; storage nodes additionally carry NVMe SSDs (device objects
are attached later by the experiment driver — the spec layer is pure
description, so it can be built and validated without a simulation
environment).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.units import GiB

__all__ = ["NodeKind", "Node", "Rack", "ClusterSpec", "paper_testbed"]


class NodeKind(enum.Enum):
    """Role of a node in the disaggregated cluster."""

    COMPUTE = "compute"
    STORAGE = "storage"


@dataclass(frozen=True)
class Node:
    """One physical host."""

    name: str
    kind: NodeKind
    rack: str
    pdu: str
    cores: int
    memory_bytes: int
    ssd_count: int = 0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"node {self.name}: cores must be >= 1")
        if self.kind is NodeKind.STORAGE and self.ssd_count < 1:
            raise ValueError(f"storage node {self.name} must carry >= 1 SSD")
        if self.kind is NodeKind.COMPUTE and self.ssd_count != 0:
            raise ValueError(f"compute node {self.name} must not carry SSDs")


@dataclass
class Rack:
    """A rack: one top-of-rack switch, one (modelled) PDU."""

    name: str
    nodes: List[Node] = field(default_factory=list)


class ClusterSpec:
    """Immutable-ish description of an entire cluster."""

    def __init__(self, racks: List[Rack]):
        if not racks:
            raise ValueError("cluster needs at least one rack")
        self.racks = list(racks)
        self._nodes: Dict[str, Node] = {}
        for rack in self.racks:
            for node in rack.nodes:
                if node.name in self._nodes:
                    raise ValueError(f"duplicate node name {node.name!r}")
                if node.rack != rack.name:
                    raise ValueError(
                        f"node {node.name} claims rack {node.rack!r} but "
                        f"sits in {rack.name!r}"
                    )
                self._nodes[node.name] = node

    # -- queries ---------------------------------------------------------------

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"no node named {name!r} in cluster") from None

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    def compute_nodes(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.kind is NodeKind.COMPUTE]

    def storage_nodes(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.kind is NodeKind.STORAGE]

    def total_cores(self, kind: Optional[NodeKind] = None) -> int:
        return sum(
            n.cores for n in self._nodes.values() if kind is None or n.kind is kind
        )

    def total_ssds(self) -> int:
        return sum(n.ssd_count for n in self._nodes.values())


def paper_testbed(
    storage_nodes: int = 8,
    compute_nodes: int = 16,
    cores_per_node: int = 28,
) -> ClusterSpec:
    """The §IV-A testbed: one storage rack and one compute rack.

    Storage nodes: 28-core Skylake, 192 GB, one Intel P4800X each.
    Compute nodes: 28-core Broadwell, 128 GB.
    """
    storage = Rack(
        name="rack-storage",
        nodes=[
            Node(
                name=f"stor{idx:02d}",
                kind=NodeKind.STORAGE,
                rack="rack-storage",
                pdu="pdu-storage",
                cores=cores_per_node,
                memory_bytes=GiB(192),
                ssd_count=1,
            )
            for idx in range(storage_nodes)
        ],
    )
    compute = Rack(
        name="rack-compute",
        nodes=[
            Node(
                name=f"comp{idx:02d}",
                kind=NodeKind.COMPUTE,
                rack="rack-compute",
                pdu="pdu-compute",
                cores=cores_per_node,
                memory_bytes=GiB(128),
            )
            for idx in range(compute_nodes)
        ],
    )
    return ClusterSpec([storage, compute])
