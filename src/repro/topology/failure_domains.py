"""Failure-domain derivation and partner-domain construction (§III-F).

    "First, we identify the failure domains for each node by using the
    network topology. Nodes which share hardware are placed in the same
    domain. [...] Next, we create partner failure domains, such that
    nodes in both partners are in separate failure domains. For each
    failure domain, we create a list of partner domains sorted by the
    number of switch hops between them."

A node's domain key is its ``(rack, pdu)`` pair — the two kinds of shared
hardware the paper names. Partner lists exclude the domain itself and
sort by minimum inter-domain hop count (ties broken by domain id so the
greedy mapping stays deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.topology.cluster import ClusterSpec, Node
from repro.topology.network import NetworkTopology

__all__ = ["FailureDomain", "derive_failure_domains", "partner_domains",
           "partition_domains", "partition_nodes"]


@dataclass
class FailureDomain:  # reproflow: ignore[FLOW103] (membership serialized by injector)
    """A set of nodes that share rack/PDU hardware and fail together."""

    domain_id: str
    nodes: List[Node] = field(default_factory=list)

    def node_names(self) -> List[str]:
        return [n.name for n in self.nodes]

    def __contains__(self, node_name: str) -> bool:
        return any(n.name == node_name for n in self.nodes)


def derive_failure_domains(cluster: ClusterSpec) -> List[FailureDomain]:
    """Group nodes into failure domains by shared rack + PDU."""
    by_key: Dict[tuple, FailureDomain] = {}
    for node in cluster.nodes:
        key = (node.rack, node.pdu)
        domain = by_key.get(key)
        if domain is None:
            domain = FailureDomain(domain_id=f"{node.rack}/{node.pdu}")
            by_key[key] = domain
        domain.nodes.append(node)
    return sorted(by_key.values(), key=lambda d: d.domain_id)


def _domain_distance(
    topo: NetworkTopology,
    a: FailureDomain,
    b: FailureDomain,
    cache: Optional[Dict[Tuple[str, str], int]] = None,
) -> int:
    """Minimum switch hops between any node pair across two domains.

    Distances are symmetric, so with a ``cache`` each unordered domain
    pair is computed once; per-node lookups ride the topology's
    single-source tables (:meth:`NetworkTopology.hops_from`) instead of
    issuing one shortest-path query per node pair.
    """
    key = (
        (a.domain_id, b.domain_id)
        if a.domain_id <= b.domain_id
        else (b.domain_id, a.domain_id)
    )
    if cache is not None and key in cache:
        return cache[key]
    distance = min(
        topo.hops_from(na.name)[nb.name] for na in a.nodes for nb in b.nodes
    )
    if cache is not None:
        cache[key] = distance
    return distance


def partition_domains(
    domains: List[FailureDomain], shards: int
) -> List[List[FailureDomain]]:
    """Partition whole failure domains across ``shards``, never splitting one.

    Sharded runs want fault blast radii to stay shard-local: a PDU or
    ToR fault touches every node in its domain, so a domain split across
    shards would force cross-shard fault propagation on every injection.
    Assignment is deterministic LPT by node count (largest domain first
    onto the least-loaded shard; ties break by domain id, then shard
    index), and each shard's domains come back sorted by domain id.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    buckets: List[List[FailureDomain]] = [[] for _ in range(shards)]
    loads = [0] * shards
    for domain in sorted(domains, key=lambda d: (-len(d.nodes), d.domain_id)):
        target = min(range(shards), key=lambda s: (loads[s], s))
        buckets[target].append(domain)
        loads[target] += len(domain.nodes)
    for bucket in buckets:
        bucket.sort(key=lambda d: d.domain_id)
    return buckets


def partition_nodes(cluster: ClusterSpec, shards: int) -> List[List[Node]]:
    """Node lists per shard, grouped by failure domain (see above)."""
    partition = partition_domains(derive_failure_domains(cluster), shards)
    return [
        sorted((n for d in bucket for n in d.nodes), key=lambda n: n.name)
        for bucket in partition
    ]


def partner_domains(
    topo: NetworkTopology,
    domains: List[FailureDomain],
) -> Dict[str, List[FailureDomain]]:
    """For each domain, the other domains sorted by hop distance.

    The balancer walks this list to find the *closest available* partner
    domain holding free SSDs ("storage devices for a job are allocated
    on the closest (fewest hops away) available partner domain").
    """
    partners: Dict[str, List[FailureDomain]] = {}
    cache: Dict[Tuple[str, str], int] = {}
    for domain in domains:
        others = [d for d in domains if d.domain_id != domain.domain_id]
        others.sort(
            key=lambda d: (_domain_distance(topo, domain, d, cache), d.domain_id)
        )
        partners[domain.domain_id] = others
    return partners
