"""Switch-level network topology.

A two-tier fat-tree-ish model: every rack has a top-of-rack (ToR)
switch; ToR switches connect to a core switch. Hop counts between nodes
feed two consumers:

* the storage balancer sorts partner failure domains by hop distance,
* the fabric model charges per-hop latency on NVMf round trips.
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx

from repro.topology.cluster import ClusterSpec

__all__ = ["NetworkTopology"]


class NetworkTopology:
    """Graph of nodes and switches with cached hop counts."""

    def __init__(self, cluster: ClusterSpec):
        self.cluster = cluster
        self.graph = nx.Graph()
        core = "switch-core"
        self.graph.add_node(core, kind="switch")
        for rack in cluster.racks:
            tor = f"switch-{rack.name}"
            self.graph.add_node(tor, kind="switch")
            self.graph.add_edge(tor, core)
            for node in rack.nodes:
                self.graph.add_node(node.name, kind="host")
                self.graph.add_edge(node.name, tor)
        self._hops: Dict[tuple, int] = {}
        self._from: Dict[str, Dict[str, int]] = {}

    def hops_from(self, a: str) -> Dict[str, int]:
        """Hop counts from ``a`` to every reachable node, computed by one
        cached single-source BFS.

        Pairwise queries over a whole domain (the balancer's partner
        sort touches every domain pair) collapse to one traversal per
        source instead of one per pair.
        """
        table = self._from.get(a)
        if table is None:
            lengths = nx.single_source_shortest_path_length(self.graph, a)
            table = {
                b: (0 if b == a else length - 1)
                for b, length in lengths.items()
            }
            self._from[a] = table
        return table

    def hop_count(self, a: str, b: str) -> int:
        """Number of switch hops between hosts ``a`` and ``b``.

        Same host -> 0. Same rack -> 1 (through the ToR). Cross-rack ->
        3 (ToR, core, ToR). Computed as shortest-path edges minus one
        (the last edge descends into the destination host).
        """
        if a == b:
            return 0
        key = (a, b) if a <= b else (b, a)
        hops = self._hops.get(key)
        if hops is None:
            hops = self.hops_from(key[0])[key[1]]
            self._hops[key] = hops
        return hops

    def switches(self) -> List[str]:
        return [n for n, d in self.graph.nodes(data=True) if d["kind"] == "switch"]

    def latency_hops(self, a: str, b: str) -> int:
        """Alias used by the fabric model (reads better at call sites)."""
        return self.hop_count(a, b)
