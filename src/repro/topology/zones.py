"""Zone federation: failure domains grouped into availability zones.

The replicated control plane (ROADMAP: "Raft-backed metadata and
multi-zone federation") places one consensus member per zone, so losing
a whole zone — a rack's ToR, a PDU — leaves a quorum elsewhere.  A
:class:`ZoneMap` federates a cluster's failure domains into named zones
without splitting any domain (a domain fails as a unit, so splitting one
across zones would fake independence the hardware doesn't have), and
answers the two questions consensus needs: which zone is a node in
(fabric latency: intra vs cross zone), and which nodes should host the
group's members (``spread``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.topology.cluster import ClusterSpec
from repro.topology.failure_domains import (
    derive_failure_domains,
    partition_domains,
)

__all__ = ["Zone", "ZoneMap"]


@dataclass(frozen=True)
class Zone:
    """A named set of whole failure domains that fail independently of
    every other zone's hardware."""

    name: str
    domain_ids: Tuple[str, ...]
    node_names: Tuple[str, ...]

    def __contains__(self, node_name: str) -> bool:
        return node_name in self.node_names


class ZoneMap:
    """Node -> zone assignment derived from failure domains."""

    def __init__(self, zones: Sequence[Zone]):
        if not zones:
            raise ValueError("a zone map needs at least one zone")
        self.zones = list(zones)
        names = [z.name for z in self.zones]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate zone names: {sorted(names)}")
        self._zone_of: Dict[str, str] = {}
        for zone in self.zones:
            for node in zone.node_names:
                if node in self._zone_of:
                    raise ValueError(
                        f"node {node!r} appears in zones "
                        f"{self._zone_of[node]!r} and {zone.name!r}"
                    )
                self._zone_of[node] = zone.name

    # -- queries -------------------------------------------------------------

    def names(self) -> List[str]:
        return [z.name for z in self.zones]

    def zone(self, name: str) -> Zone:
        for zone in self.zones:
            if zone.name == name:
                return zone
        raise KeyError(f"no zone named {name!r}")

    def zone_of(self, node_name: str) -> str:
        try:
            return self._zone_of[node_name]
        except KeyError:
            raise KeyError(f"node {node_name!r} is in no zone") from None

    def nodes_in(self, zone_name: str) -> List[str]:
        return list(self.zone(zone_name).node_names)

    def spread(self, candidates: Sequence[str], count: int) -> List[str]:
        """Pick ``count`` of ``candidates`` round-robin across zones.

        One pick per zone (zone order, candidate order within a zone)
        before any zone contributes a second — the consensus placement
        rule: members land in distinct zones while zones last.
        """
        if count > len(candidates):
            raise ValueError(
                f"cannot spread {count} members over {len(candidates)} "
                "candidates"
            )
        by_zone: Dict[str, List[str]] = {z.name: [] for z in self.zones}
        for node in candidates:
            by_zone[self.zone_of(node)].append(node)
        picked: List[str] = []
        while len(picked) < count:
            progressed = False
            for zone in self.zones:
                pool = by_zone[zone.name]
                if pool:
                    picked.append(pool.pop(0))
                    progressed = True
                    if len(picked) == count:
                        break
            if not progressed:  # pragma: no cover - guarded by len check
                break
        return picked

    # -- construction ---------------------------------------------------------

    @classmethod
    def federate(cls, cluster: ClusterSpec, zones: int = 2) -> "ZoneMap":
        """Partition the cluster's failure domains into ``zones`` zones.

        Reuses the shard partitioner (deterministic LPT over whole
        domains), so a zone is always a union of failure domains and the
        assignment is reproducible from the cluster spec alone.
        """
        domains = derive_failure_domains(cluster)
        if zones > len(domains):
            raise ValueError(
                f"cannot federate {len(domains)} failure domains into "
                f"{zones} zones"
            )
        buckets = partition_domains(domains, zones)
        built = []
        for idx, bucket in enumerate(buckets):
            node_names = tuple(
                sorted(n.name for d in bucket for n in d.nodes)
            )
            built.append(Zone(
                name=f"zone{idx}",
                domain_ids=tuple(d.domain_id for d in bucket),
                node_names=node_names,
            ))
        return cls(built)
