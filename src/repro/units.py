"""Readable size, time, and rate units.

Everything in the simulator uses base SI-ish units:

* **bytes** for sizes (plain ``int``),
* **seconds** for times (plain ``float``),
* **bytes/second** for rates (plain ``float``).

These helpers exist so call sites read like the paper
(``MiB(512)``, ``GB_per_s(2.4)``, ``us(3)``) instead of exponent soup.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Sizes (binary units -- block devices and memory are binary-sized)
# --------------------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB


def KiB(n: float) -> int:
    """``n`` kibibytes as an integer byte count."""
    return int(n * KIB)


def MiB(n: float) -> int:
    """``n`` mebibytes as an integer byte count."""
    return int(n * MIB)


def GiB(n: float) -> int:
    """``n`` gibibytes as an integer byte count."""
    return int(n * GIB)


def TiB(n: float) -> int:
    """``n`` tebibytes as an integer byte count."""
    return int(n * TIB)


# --------------------------------------------------------------------------
# Times
# --------------------------------------------------------------------------


def ns(n: float) -> float:
    """``n`` nanoseconds in seconds."""
    return n * 1e-9


def us(n: float) -> float:
    """``n`` microseconds in seconds."""
    return n * 1e-6


def ms(n: float) -> float:
    """``n`` milliseconds in seconds."""
    return n * 1e-3


def seconds(n: float) -> float:
    """``n`` seconds (identity; for symmetry at call sites)."""
    return float(n)


# --------------------------------------------------------------------------
# Rates (decimal units -- vendors quote GB/s decimal)
# --------------------------------------------------------------------------


def MB_per_s(n: float) -> float:
    """``n`` decimal megabytes per second, in bytes/second."""
    return n * 1e6


def GB_per_s(n: float) -> float:
    """``n`` decimal gigabytes per second, in bytes/second."""
    return n * 1e9


def Gbit_per_s(n: float) -> float:
    """``n`` gigabits per second, in bytes/second."""
    return n * 1e9 / 8.0


# --------------------------------------------------------------------------
# Formatting helpers (used by the bench harness for paper-style tables)
# --------------------------------------------------------------------------


def fmt_bytes(n: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``512.0 MiB``."""
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            return f"{value:.1f} {suffix}" if suffix != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_rate(bytes_per_s: float) -> str:
    """Render a rate in decimal units, e.g. ``2.40 GB/s``."""
    value = float(bytes_per_s)
    for suffix in ("B/s", "KB/s", "MB/s", "GB/s"):
        if abs(value) < 1000.0 or suffix == "GB/s":
            return f"{value:.2f} {suffix}"
        value /= 1000.0
    raise AssertionError("unreachable")


def fmt_time(t: float) -> str:
    """Render a duration with an adaptive unit, e.g. ``39.5 s`` / ``120 us``."""
    if t >= 1.0:
        return f"{t:.2f} s"
    if t >= 1e-3:
        return f"{t * 1e3:.2f} ms"
    if t >= 1e-6:
        return f"{t * 1e6:.2f} us"
    return f"{t * 1e9:.1f} ns"
