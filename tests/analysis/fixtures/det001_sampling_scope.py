"""Corpus: a *copycat* sampling profiler outside repro/obs/sampling.py.

The DET001 allowlist is scoped to the real profiler module by path
suffix. This file has the same shape — a thread loop timestamping
samples — but lives in the fixture tree, so every wall-clock read
below must still fire. Guards against the allowlist quietly widening.
"""

import time


class CopycatSampler:
    def __init__(self):
        self.samples = []

    def start(self):
        self.t0 = time.perf_counter()  # DET001

    def tick(self):
        self.samples.append(time.monotonic())  # DET001

    def stop(self):
        return time.perf_counter() - self.t0  # DET001
