"""DetLint corpus: DET001 — wall-clock reads in simulation code."""

import time
from datetime import datetime
from time import perf_counter


def stamp_event(record):
    record["at"] = time.time()  # DET001: wall clock, not env.now
    return record


def measure():
    start = perf_counter()  # DET001: from-import resolves to time.perf_counter
    return start


def log_line(msg):
    return f"{datetime.now()} {msg}"  # DET001: datetime.datetime.now
