"""DetLint corpus: DET002 — module-level / unseeded RNG draws."""

import random

import numpy as np


def pick_server(servers):
    return random.choice(servers)  # DET002: stdlib global RNG


def jitter():
    return np.random.rand()  # DET002: numpy module-level global state


def seeded_ok(seed):
    # Seeded construction at a boundary is allowed (no finding).
    return np.random.default_rng(seed)
