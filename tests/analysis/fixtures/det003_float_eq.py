"""DetLint corpus: DET003 — exact float equality on sim timestamps."""


def fired_exactly(env, deadline):
    return env.now == deadline  # DET003: two sim timestamps compared exactly


def is_start(start_time):
    if start_time == 0.5:  # DET003: timestamp vs float literal
        return True
    return False


def int_compare_ok(count):
    # Integer equality on a non-timelike name: no finding.
    return count == 3
