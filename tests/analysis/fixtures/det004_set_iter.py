"""DetLint corpus: DET004 — hash-order iteration over sets."""


def schedule_all(env, ranks):
    pending = set(ranks)
    for rank in pending:  # DET004: set iteration order is hash-seeded
        env.process(rank)


def snapshot(live):
    return list({x.name for x in live})  # DET004: list(set) keeps hash order


def sorted_ok(live):
    # Sorting the set first pins the order: no finding.
    for name in sorted({x.name for x in live}):
        yield name
