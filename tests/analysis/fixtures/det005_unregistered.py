"""DetLint corpus: DET005 — coroutines / timeouts created but never driven."""


def worker(env):
    yield env.timeout(1.0)


def boot(env):
    worker(env)  # DET005: generator created, never registered
    env.timeout(5.0)  # DET005: timeout event discarded


def boot_ok(env):
    env.process(worker(env))  # registered: no finding
    yield env.timeout(5.0)  # yielded: no finding
