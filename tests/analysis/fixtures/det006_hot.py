"""DetLint corpus: DET006 — hot-module class without __slots__.

Only fires when this path is configured as a hot module (the unit test
passes ``LintConfig(hot_modules=(..., "fixtures/det006_hot.py"))``).
"""


class HotEvent:  # DET006 under a hot-module config
    def __init__(self, time):
        self.time = time


class SlottedEvent:
    __slots__ = ("time",)

    def __init__(self, time):
        self.time = time
