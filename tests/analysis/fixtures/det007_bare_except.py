"""DetLint corpus: DET007 — bare except around simulation code."""


def drive(env, proc):
    try:
        env.run()
    except:  # noqa: E722  DET007: swallows Interrupt/SimulationError
        pass


def drive_ok(env, proc):
    try:
        env.run()
    except RuntimeError:
        raise
