"""DetLint corpus: DET008 — process-identity reads in simulation code."""

import os
import uuid
from os import getpid
from secrets import token_hex


def name_shard(record):
    record["worker"] = os.getpid()  # DET008: pid varies per process
    return record


def tag_run():
    return str(uuid.uuid4())  # DET008: random uuid varies per run


def from_import_alias():
    return getpid()  # DET008: from-import resolves to os.getpid


def salt():
    return token_hex(8)  # DET008: secrets draws from the OS entropy pool


def worker_entry(conn):
    # The sanctioned pattern: allowlisted modules (repro/exec/executors.py)
    # or an explicit suppression for spawn-time diagnostics.
    pid = os.getpid()  # detlint: ignore[DET008]
    conn.send(pid)
