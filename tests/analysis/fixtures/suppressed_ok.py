"""DetLint corpus: every violation suppressed — lints clean.

# detlint: ignore-file[DET004]
"""

import random
import time


def stamp():
    return time.time()  # detlint: ignore[DET001]


def pick(items):
    return random.choice(items)  # detlint: ignore[DET002]


def both(env, deadline):
    return env.now == deadline, time.time()  # detlint: ignore[DET001, DET003]


def hash_order(live):
    # DET004 findings are suppressed file-wide by the header comment.
    for item in {x for x in live}:
        yield item
