"""FLOW101 corpus: impurity laundered through a module-level binding.

Per-file DetLint resolves call sites through its import maps only, so
``_draw()`` never matches the ``random.*`` sink table — the binding is
the laundering shape the whole-program analyzer exists to catch.
"""

import random

_draw = random.random


def jitter_ms():
    # EXPECT FLOW101 (laundered unseeded-rng sink site)
    return _draw() * 5.0


def pure_delay_ms():
    return 3.0
