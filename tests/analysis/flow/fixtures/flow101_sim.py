"""FLOW101 corpus: sim coroutine transitively tainted across modules."""

from flow101_helper import jitter_ms, pure_delay_ms


def boot(env):
    env.process(rank(env))
    env.process(steady(env))


def rank(env):
    # EXPECT FLOW101 on this coroutine (chain: rank -> jitter_ms -> random.random)
    yield env.timeout(jitter_ms())


def steady(env):
    yield env.timeout(pure_delay_ms())
