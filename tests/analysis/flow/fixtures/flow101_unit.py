"""FLOW101 corpus: executor entry point tainted through its fn string."""

from flow101_helper import jitter_ms


class SimUnit:
    def __init__(self, index, label, fn, params=None):
        self.index = index
        self.label = label
        self.fn = fn
        self.params = params or {}


def run_cell(params):
    # EXPECT FLOW101 on this entry point (reached via SimUnit fn string)
    return jitter_ms() + params.get("base_ms", 0.0)


def build_plan():
    return [SimUnit(0, "cell", "flow101_unit:run_cell")]
