"""FLOW102 corpus (module 2): cross-module discards and undriven coroutines."""

from flow102_tasks import chatty, make_worker, worker


def boot(env):
    env.process(worker(env))
    env.process(chatty(env))
    env.process(nested(env))


def stranded(env):
    # EXPECT FLOW102 (factory's coroutine discarded — one-hop indirection)
    make_worker(env)
    yield env.timeout(1.0)


def lost(env):
    # EXPECT FLOW102 (cross-module generator called as a statement)
    worker(env)
    yield env.timeout(1.0)


def nested(env):
    # EXPECT FLOW102 (yields the coroutine object instead of driving it)
    yield worker(env)


def idle(env):
    # EXPECT FLOW102 (coroutine assigned but never driven or registered)
    p = worker(env)
    yield env.timeout(1.0)
