"""FLOW102 corpus (module 1): coroutine definitions and a factory."""


def worker(env):
    yield env.timeout(1.0)
    yield env.timeout(2.0)


def make_worker(env):
    return worker(env)


def chatty(env):
    yield env.timeout(1.0)
    # EXPECT FLOW102 (non-event yield in a sim coroutine)
    yield 42.0
