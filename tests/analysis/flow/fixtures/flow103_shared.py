"""FLOW103 corpus: shared mutable state contended by two actor coroutines.

``SharedTally`` declares no ``_san_tiebreak`` and is bumped from two
distinct process-registered coroutines — a statically discoverable race
candidate.  ``SafeQueue`` has the same shape but declares its ordering
contract, so it must NOT be reported.
"""


class SharedTally:
    def __init__(self, env=None):
        self.env = env
        self.total = 0

    def bump(self, n):
        monitor = getattr(self.env, "monitor", None) if self.env else None
        if monitor is not None:
            monitor.note_mutation(self, "bump")
        self.total += n


class SafeQueue:
    _san_tiebreak = "fifo"

    def __init__(self):
        self.items = []

    def push(self, item):
        self.items.append(item)


def writer_a(env, tally: SharedTally):
    yield env.timeout(1.0)
    tally.bump(1)


def writer_b(env, tally: SharedTally):
    yield env.timeout(1.0)
    tally.bump(2)


def safe_a(env, q: SafeQueue):
    yield env.timeout(1.0)
    q.push("a")


def safe_b(env, q: SafeQueue):
    yield env.timeout(1.0)
    q.push("b")


def boot(env, tally: SharedTally, q: SafeQueue):
    # EXPECT FLOW103 on SharedTally.total (writer_a + writer_b), none on SafeQueue
    env.process(writer_a(env, tally))
    env.process(writer_b(env, tally))
    env.process(safe_a(env, q))
    env.process(safe_b(env, q))
