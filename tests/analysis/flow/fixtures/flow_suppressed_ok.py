"""Flow corpus: every violation here carries a reproflow suppression."""

import random

_pick = random.choice


def choose(options):
    return _pick(options)  # reproflow: ignore[FLOW101] (test-only shuffle)


def boot(env):
    env.process(spin(env))


def spin(env):
    drop(env)  # reproflow: ignore[FLOW102] (intentional no-op coroutine)
    yield env.timeout(1.0)


def drop(env):
    yield env.timeout(1.0)
