"""Call-graph builder: the shapes that defeat naive per-file resolution."""

import textwrap

from repro.analysis.flow.callgraph import build_callgraph
from repro.analysis.flow.symbols import ProjectIndex, module_name_for
from repro.analysis.flow.yieldcheck import classify_sim_coroutines


def _graph(tmp_path, **modules):
    for name, source in modules.items():
        (tmp_path / f"{name}.py").write_text(textwrap.dedent(source))
    index = ProjectIndex.build([str(tmp_path)])
    return index, build_callgraph(index)


def _edges(graph, caller):
    return {(e.callee, e.kind) for e in graph.callees(caller)}


def test_yield_from_chain_classified_transitively(tmp_path):
    index, graph = _graph(
        tmp_path,
        chain="""
        def boot(env):
            env.process(top(env))

        def top(env):
            yield from middle(env)

        def middle(env):
            yield from bottom(env)

        def bottom(env):
            yield env.timeout(1.0)
        """,
    )
    assert graph.process_roots == {"chain.top": False}
    assert ("chain.middle", "yield_from") in _edges(graph, "chain.top")
    assert ("chain.bottom", "yield_from") in _edges(graph, "chain.middle")
    assert classify_sim_coroutines(index, graph) == {
        "chain.top",
        "chain.middle",
        "chain.bottom",
    }


def test_process_registration_in_loop_marks_multi_instance(tmp_path):
    _, graph = _graph(
        tmp_path,
        looped="""
        def boot(env):
            for _ in range(4):
                env.process(cell(env))

        def cell(env):
            yield env.timeout(1.0)
        """,
    )
    assert graph.process_roots == {"looped.cell": True}


def test_partial_targets_resolve_to_edges(tmp_path):
    _, graph = _graph(
        tmp_path,
        partials="""
        import functools
        from functools import partial
        import random

        def work(x):
            return x + 1

        def build():
            a = partial(work, 1)
            b = functools.partial(work, 2)
            c = partial(random.random)
            return a, b, c
        """,
    )
    kinds = _edges(graph, "partials.build")
    assert ("partials.work", "partial") in kinds
    # The external partial target surfaces as a *laundered* sink call.
    externals = graph.external.get("partials.build", [])
    assert any(
        (e.module, e.attr, e.laundered) == ("random", "random", True)
        for e in externals
    )


def test_simunit_entry_points_by_import_path(tmp_path):
    _, graph = _graph(
        tmp_path,
        plan="""
        from units import SimUnit

        def build():
            return [
                SimUnit(0, "a", "cells:run_a"),
                SimUnit(1, "b", fn="cells:run_b"),
                SimUnit(2, "missing", "cells:nope"),
            ]
        """,
        units="""
        class SimUnit:
            def __init__(self, index, label, fn, params=None):
                self.fn = fn
        """,
        cells="""
        def run_a(params):
            return 1

        def run_b(params):
            return 2
        """,
    )
    assert graph.entry_points == {"cells.run_a", "cells.run_b"}
    kinds = _edges(graph, "plan.build")
    assert ("cells.run_a", "simunit") in kinds
    assert ("cells.run_b", "simunit") in kinds


def test_method_resolution_through_slots_class(tmp_path):
    _, graph = _graph(
        tmp_path,
        slotted="""
        class Plane:
            __slots__ = ("n",)

            def __init__(self):
                self.n = 0

            def advance(self):
                self.n += 1

        def drive(plane: Plane):
            plane.advance()

        def build():
            p = Plane()
            p.advance()
        """,
    )
    # Annotated parameter and constructor-inferred local both resolve.
    assert ("slotted.Plane.advance", "call") in _edges(graph, "slotted.drive")
    assert ("slotted.Plane.advance", "call") in _edges(graph, "slotted.build")
    # The self-mutation inside the slots class is recorded for FLOW103.
    writes = graph.facts["slotted.Plane.advance"].attr_writes
    assert [(cls, attr) for cls, attr, _ in writes] == [("slotted.Plane", "n")]


def test_instance_attribute_types_from_init(tmp_path):
    _, graph = _graph(
        tmp_path,
        nested="""
        class Engine:
            def step(self):
                return 1

        class Host:
            def __init__(self):
                self.engine = Engine()

            def tick(self):
                self.engine.step()
        """,
    )
    assert ("nested.Engine.step", "call") in _edges(graph, "nested.Host.tick")


def test_module_name_for_walks_packages(tmp_path):
    pkg = tmp_path / "pkg" / "sub"
    pkg.mkdir(parents=True)
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text("")
    assert module_name_for(pkg / "mod.py") == "pkg.sub.mod"
    loose = tmp_path / "loose.py"
    loose.write_text("")
    assert module_name_for(loose) == "loose"
