"""CLI surfaces: exit codes, formats, baseline workflow, candidates export."""

import json
from pathlib import Path

from repro.analysis.flow import main as flow_main
from repro.cli import main as repro_main

FIXTURES = str(Path(__file__).parent / "fixtures")
CLEAN = str(Path(__file__).parent / "fixtures" / "flow_suppressed_ok.py")


def test_flow_main_exit_codes(capsys):
    assert flow_main([CLEAN]) == 0
    assert "clean" in capsys.readouterr().out
    assert flow_main([FIXTURES]) == 1
    out = capsys.readouterr().out
    assert "FLOW101" in out and "FLOW102" in out and "FLOW103" in out


def test_flow_json_and_sarif_outputs(tmp_path, capsys):
    json_path = tmp_path / "flow.json"
    sarif_path = tmp_path / "flow.sarif"
    assert flow_main([FIXTURES, "--format", "json", "--output", str(json_path)]) == 1
    assert flow_main([FIXTURES, "--format", "sarif", "--output", str(sarif_path)]) == 1
    capsys.readouterr()
    payload = json.loads(json_path.read_text())
    assert payload["tool"] == "reproflow" and payload["count"] == 9
    sarif = json.loads(sarif_path.read_text())
    assert sarif["version"] == "2.1.0"
    assert len(sarif["runs"][0]["results"]) == 9


def test_baseline_workflow_blocks_only_new_findings(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    # Bless the current corpus findings, then re-run against the baseline:
    # everything is known, so the run is clean and exits 0.
    assert flow_main([FIXTURES, "--write-baseline", str(baseline)]) == 0
    assert flow_main([FIXTURES, "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
    # An empty baseline blocks everything again.
    baseline.write_text('{"version": 1, "tool": "reproflow", "findings": {}}')
    assert flow_main([FIXTURES, "--baseline", str(baseline)]) == 1
    capsys.readouterr()


def test_candidates_export(tmp_path, capsys):
    out = tmp_path / "candidates.json"
    flow_main([FIXTURES, "--candidates-out", str(out)])
    capsys.readouterr()
    data = json.loads(out.read_text())
    classes = {c["class"]: c for c in data["candidates"]}
    assert "flow103_shared.SharedTally" in classes
    entry = classes["flow103_shared.SharedTally"]
    assert entry["attr"] == "total"
    assert len(entry["actors"]) == 2


def test_repro_flow_subcommand(capsys):
    assert repro_main(["flow", CLEAN]) == 0
    assert "clean" in capsys.readouterr().out


def test_repro_lint_format_json(capsys):
    # The laundered-RNG fixture is DetLint-clean by construction (that
    # is the point of FLOW101), so it doubles as the lint-JSON fixture.
    helper = str(Path(FIXTURES) / "flow101_helper.py")
    assert repro_main(["lint", helper, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "detlint" and payload["count"] == 0
