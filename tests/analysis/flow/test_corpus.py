"""The committed violation corpus yields exactly the expected findings.

This is the analyzer's self-test: CI runs the same corpus and fails if
any expected finding disappears (a regression in the analysis) or a new
one appears (a precision regression).
"""

from pathlib import Path

from repro.analysis.detlint import lint_file
from repro.analysis.flow import analyze
from repro.analysis.flow.config import FlowConfig

FIXTURES = Path(__file__).parent / "fixtures"


def _findings():
    # A fresh FlowConfig (no pyproject overlay) keeps the corpus
    # self-contained: nothing in the repo's allowlists applies here.
    findings, candidates = analyze([str(FIXTURES)], FlowConfig())
    return findings, candidates


def _by_file(findings):
    out = {}
    for f in findings:
        out.setdefault(Path(f.path).name, []).append(f)
    return out


def test_corpus_exact_finding_counts():
    findings, _ = _findings()
    codes = sorted(f.code for f in findings)
    assert codes == ["FLOW101"] * 3 + ["FLOW102"] * 5 + ["FLOW103"]


def test_flow101_laundered_sink_site_reported():
    per_file = _by_file(_findings()[0])
    helper = per_file["flow101_helper.py"]
    assert [f.code for f in helper] == ["FLOW101"]
    assert "module-level binding" in helper[0].message
    assert helper[0].symbol == "flow101_helper.jitter_ms"


def test_flow101_tainted_sim_coroutine_with_chain():
    per_file = _by_file(_findings()[0])
    (finding,) = per_file["flow101_sim.py"]
    assert finding.symbol == "flow101_sim.rank"
    assert finding.chain == (
        "flow101_sim.rank",
        "flow101_helper.jitter_ms",
        "random.random",
    )
    # The clean coroutine in the same module is not flagged.
    assert all(f.symbol != "flow101_sim.steady" for f in _findings()[0])


def test_flow101_simunit_entry_point_tainted():
    per_file = _by_file(_findings()[0])
    (finding,) = per_file["flow101_unit.py"]
    assert finding.symbol == "flow101_unit.run_cell"
    assert "SimUnit entry point" in finding.message


def test_flow101_catches_what_detlint_provably_misses():
    """The acceptance fixture: one-hop laundered RNG, invisible per-file.

    DetLint's DET002 matches call sites against its import-derived
    origin map; a module-level binding (``_draw = random.random``)
    resolves to nothing, so the file lints clean — while the
    whole-program analyzer reports both the sink site and the tainted
    coroutine that reaches it from another module.
    """
    helper = FIXTURES / "flow101_helper.py"
    assert lint_file(helper) == []  # DetLint: provably blind here
    findings, _ = _findings()
    flow101 = [f for f in findings if f.code == "FLOW101"]
    assert any(Path(f.path).name == "flow101_helper.py" for f in flow101)
    assert any(f.symbol == "flow101_sim.rank" for f in flow101)


def test_flow102_all_shapes():
    findings = [f for f in _findings()[0] if f.code == "FLOW102"]
    by_symbol = {f.symbol: f for f in findings}
    assert set(by_symbol) == {
        "flow102_driver.stranded",  # factory coroutine discarded (one hop)
        "flow102_driver.lost",  # cross-module generator discarded
        "flow102_driver.nested",  # yields the coroutine object
        "flow102_driver.idle",  # assigned but never driven
        "flow102_tasks.chatty",  # non-event yield
    }
    assert "returns a coroutine that is discarded" in (
        by_symbol["flow102_driver.stranded"].message
    )
    assert "yield from" in by_symbol["flow102_driver.nested"].message
    assert "never driven" in by_symbol["flow102_driver.idle"].message
    assert "non-event" in by_symbol["flow102_tasks.chatty"].message


def test_flow102_spares_plain_iterator_generators():
    """Yield-value checks apply only to engine-registered coroutines."""
    findings = [f for f in _findings()[0] if f.code == "FLOW102"]
    # `worker` yields event-looking calls and is properly registered.
    assert all(f.symbol != "flow102_tasks.worker" for f in findings)


def test_flow103_candidate_and_tiebreak_exemption():
    findings, candidates = _findings()
    flow103 = [f for f in findings if f.code == "FLOW103"]
    assert len(flow103) == 1
    (finding,) = flow103
    assert finding.symbol == "flow103_shared.SharedTally"
    assert "SharedTally.total" in finding.message
    # SafeQueue has the same two-writer shape but declares its contract.
    assert all("SafeQueue" not in f.symbol for f in findings)
    tally = [c for c in candidates if c.class_qualname.endswith("SharedTally")]
    assert tally and tally[0].attr == "total"
    assert set(a.rsplit(".", 1)[-1] for a in tally[0].actors) == {
        "writer_a",
        "writer_b",
    }


def test_suppressed_fixture_is_clean():
    findings, _ = _findings()
    assert all(
        Path(f.path).name != "flow_suppressed_ok.py" for f in findings
    ), [f.render() for f in findings]
