"""Shared emitters (JSON/SARIF), baselines, and suppression grammar."""

import json

from repro.analysis.detlint import RULES, Finding as LintFinding, parse_suppressions
from repro.analysis.flow.report import (
    FLOW_RULES,
    FlowFinding,
    filter_baseline,
    findings_payload,
    fingerprint,
    load_baseline,
    to_sarif,
    write_baseline,
)


def _finding(line=10, code="FLOW101", symbol="mod.fn"):
    return FlowFinding(
        path="src/mod.py",
        line=line,
        col=3,
        code=code,
        symbol=symbol,
        message="boom",
        chain=("mod.fn", "time.time"),
    )


def test_findings_payload_includes_symbol_and_chain():
    payload = findings_payload([_finding()], tool_name="reproflow")
    assert payload["tool"] == "reproflow"
    assert payload["count"] == 1
    item = payload["findings"][0]
    assert item["symbol"] == "mod.fn"
    assert item["chain"] == ["mod.fn", "time.time"]


def test_findings_payload_works_for_detlint_findings():
    lint = LintFinding(path="a.py", line=1, col=1, code="DET001", message="m")
    payload = findings_payload([lint], tool_name="detlint")
    assert payload["findings"][0]["code"] == "DET001"
    assert "symbol" not in payload["findings"][0]


def test_sarif_document_shape():
    doc = to_sarif([_finding()], tool_name="reproflow", rules=FLOW_RULES)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "reproflow"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"FLOW101", "FLOW102", "FLOW103"} <= rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "FLOW101"
    assert "chain: mod.fn -> time.time" in result["message"]["text"]
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region == {"startLine": 10, "startColumn": 3}


def test_sarif_accepts_detlint_rules():
    lint = LintFinding(path="a.py", line=1, col=1, code="DET001", message="m")
    doc = to_sarif([lint], tool_name="detlint", rules=RULES)
    assert doc["runs"][0]["results"][0]["ruleId"] == "DET001"
    assert any(
        r["id"] == "DET001" for r in doc["runs"][0]["tool"]["driver"]["rules"]
    )


def test_fingerprint_stable_across_line_moves():
    assert fingerprint(_finding(line=10)) == fingerprint(_finding(line=99))
    assert fingerprint(_finding()) != fingerprint(_finding(code="FLOW102"))


def test_baseline_roundtrip_and_count_semantics(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    known = [_finding(), _finding(line=20)]  # same fingerprint, count 2
    write_baseline(str(baseline_path), known)
    data = json.loads(baseline_path.read_text())
    assert data["tool"] == "reproflow"
    assert list(data["findings"].values()) == [2]

    baseline = load_baseline(str(baseline_path))
    # Two occurrences are absorbed; a third identical one is fresh.
    assert filter_baseline(known, baseline) == []
    three = [*known, _finding(line=30)]
    fresh = filter_baseline(three, baseline)
    assert len(fresh) == 1
    # A different rule is always fresh.
    other = _finding(code="FLOW103")
    assert filter_baseline([other], baseline) == [other]


def test_parse_suppressions_is_tool_scoped():
    source = (
        "# reproflow: ignore-file[FLOW103]\n"
        "x = 1  # detlint: ignore[DET001]\n"
        "y = 2  # reproflow: ignore[FLOW101, FLOW102]\n"
    )
    det_line, det_file = parse_suppressions(source, tool="detlint")
    flow_line, flow_file = parse_suppressions(source, tool="reproflow")
    assert det_line == {2: {"DET001"}} and det_file == set()
    assert flow_line == {3: {"FLOW101", "FLOW102"}}
    assert flow_file == {"FLOW103"}
