"""The shipped tree passes its own whole-program analyzer.

Mirrors ``test_src_lints_clean`` for DetLint: every intentional
violation in ``src/repro`` is either fixed, allowlisted in
``[tool.reproflow]``, or carries a justified line suppression — so CI
can run ``repro flow src --baseline flow-baseline.json`` as a blocking
step with an empty committed baseline.
"""

import json
from pathlib import Path

from repro.analysis.flow import analyze, load_flow_config

ROOT = Path(__file__).resolve().parents[3]


def test_src_flows_clean():
    findings, _ = analyze([str(ROOT / "src")], load_flow_config(ROOT))
    assert findings == [], "\n".join(f.render() for f in findings)


def test_committed_baseline_is_empty():
    """The baseline exists for the CI workflow but holds no debt."""
    data = json.loads((ROOT / "flow-baseline.json").read_text())
    assert data["tool"] == "reproflow"
    assert data["findings"] == {}


def test_src_candidates_include_deliberately_unsuppressed_devices():
    """SSDs are intentionally tie-break-free (the runtime sanitizer
    watches them); the static pass must still export them as candidates
    even though the blocking finding is suppressed."""
    _, candidates = analyze([str(ROOT / "src")], load_flow_config(ROOT))
    classes = {c.class_qualname for c in candidates}
    assert "repro.nvme.device.SSD" in classes
