"""The static→runtime loop: a FLOW103 candidate is caught live.

The corpus class ``SharedTally`` is discovered statically (two actor
coroutines mutate ``total``, no ``_san_tiebreak``), exported through the
candidate file, loaded back, and then *actually raced* on the real
engine — the runtime sanitizer must both catch the race and annotate it
as statically predicted.
"""

import importlib.util
from pathlib import Path

from repro.analysis.flow import analyze
from repro.analysis.flow.config import FlowConfig
from repro.analysis.flow.races import load_candidates, write_candidates
from repro.analysis.sanitize import attach_if_active, sanitized_run
from repro.sim.engine import Environment

FIXTURES = Path(__file__).parent / "fixtures"


def _import_fixture(name):
    spec = importlib.util.spec_from_file_location(name, FIXTURES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_static_candidate_is_caught_and_annotated_at_runtime(tmp_path):
    # 1. Static discovery over the corpus.
    _, candidates = analyze([str(FIXTURES)], FlowConfig())
    path = tmp_path / "flow-candidates.json"
    write_candidates(str(path), candidates)
    loaded = load_candidates(str(path))
    assert loaded["flow103_shared.SharedTally"] == {"total"}

    # 2. Drive the *same* fixture code on the real engine, racing the
    #    statically flagged attribute at one timestamp.
    shared = _import_fixture("flow103_shared")

    def run():
        env = Environment()
        attach_if_active(env, label="tally")
        tally = shared.SharedTally(env)
        env.process(shared.writer_a(env, tally))
        env.process(shared.writer_b(env, tally))
        env.run()
        return tally.total

    result, report = sanitized_run(run, candidates=loaded)
    assert result == 3
    assert not report.ok
    assert len(report.races) == 1
    message = report.races[0].message
    assert report.races[0].subject.startswith("flow103_shared.SharedTally")
    assert "[predicted by repro.flow FLOW103: total]" in message


def test_unpredicted_race_is_not_annotated():
    shared = _import_fixture("flow103_shared")

    def run():
        env = Environment()
        attach_if_active(env, label="tally")
        tally = shared.SharedTally(env)
        env.process(shared.writer_a(env, tally))
        env.process(shared.writer_b(env, tally))
        env.run()

    _, report = sanitized_run(run)  # no candidate handoff
    assert len(report.races) == 1
    assert "predicted" not in report.races[0].message


def test_load_candidates_missing_or_malformed(tmp_path):
    assert load_candidates(str(tmp_path / "absent.json")) == {}
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert load_candidates(str(bad)) == {}
