"""DetLint: the tree stays clean, the corpus fires, suppressions hold."""

from pathlib import Path

from repro.analysis.detlint import (
    RULES,
    LintConfig,
    lint_file,
    lint_paths,
    load_config,
    main,
)

_HERE = Path(__file__).parent
_FIXTURES = _HERE / "fixtures"
_REPO = _HERE.parents[1]


def _codes(name, config=None):
    return [f.code for f in lint_file(_FIXTURES / name, config)]


# -- the tree itself ----------------------------------------------------------


def test_src_lints_clean():
    """The enforced contract: zero findings across the whole source tree."""
    config = load_config(root=_REPO)
    findings = lint_paths([str(_REPO / "src")], config)
    assert findings == [], "\n".join(f.render() for f in findings)


# -- the violation corpus -----------------------------------------------------


def test_det001_wall_clock_corpus():
    assert _codes("det001_wall_clock.py") == ["DET001", "DET001", "DET001"]


def test_det001_sampling_allowlist_is_path_scoped():
    """The sampling-profiler allowlist covers exactly its module path.

    The same wall-clock-reading source is clean at
    ``repro/obs/sampling.py`` but fires everywhere else — including a
    copycat fixture shaped like the profiler.
    """
    assert _codes("det001_sampling_scope.py") == ["DET001"] * 3
    source = (_FIXTURES / "det001_sampling_scope.py").read_text()
    config = LintConfig()
    allowed = lint_file(Path("src/repro/obs/sampling.py"), config,
                        source=source)
    assert allowed == []
    elsewhere = lint_file(Path("src/repro/sim/sampling.py"), config,
                          source=source)
    assert [f.code for f in elsewhere] == ["DET001"] * 3


def test_det002_rng_corpus():
    codes = _codes("det002_rng.py")
    assert codes == ["DET002", "DET002"]  # seeded default_rng not flagged


def test_det003_float_eq_corpus():
    assert _codes("det003_float_eq.py") == ["DET003", "DET003"]


def test_det004_set_iteration_corpus():
    assert _codes("det004_set_iter.py") == ["DET004", "DET004"]


def test_det005_unregistered_coroutine_corpus():
    assert _codes("det005_unregistered.py") == ["DET005", "DET005"]


def test_det006_hot_module_slots():
    """DET006 fires only under a hot-module config, and only on the
    class without __slots__."""
    assert _codes("det006_hot.py") == []  # not hot by default
    hot = LintConfig(hot_modules=("fixtures/det006_hot.py",))
    findings = lint_file(_FIXTURES / "det006_hot.py", hot)
    assert [f.code for f in findings] == ["DET006"]
    assert "HotEvent" in findings[0].message


def test_det007_bare_except_corpus():
    assert _codes("det007_bare_except.py") == ["DET007"]


def test_det008_process_identity_corpus():
    # Four violations fire; the suppressed worker-entry pid read does not.
    assert _codes("det008_pid.py") == ["DET008"] * 4


def test_suppressions_silence_everything():
    assert _codes("suppressed_ok.py") == []


def test_every_rule_has_a_hint_and_stable_code():
    assert sorted(RULES) == [f"DET00{i}" for i in range(1, 9)]
    for code, rule in RULES.items():
        assert rule.code == code
        assert rule.hint


# -- config: allowlists -------------------------------------------------------


def test_allowlist_suppresses_by_path_suffix():
    source = "import time\nWALL = time.time()\n"
    config = LintConfig()
    flagged = lint_file(
        Path("src/repro/core/data_plane.py"), config, source=source
    )
    assert [f.code for f in flagged] == ["DET001"]
    allowed = lint_file(
        Path("src/repro/obs/context.py"), config, source=source
    )
    assert allowed == []  # self-profiler may read the wall clock


def test_executor_allowlist_covers_worker_entry_points():
    # The worker-process boundary may read the wall clock and its own pid;
    # everywhere else DET008 fires.
    source = "import os, time\nPID = os.getpid()\nT0 = time.time()\n"
    config = LintConfig()
    flagged = lint_file(Path("src/repro/core/data_plane.py"), config,
                        source=source)
    assert sorted(f.code for f in flagged) == ["DET001", "DET008"]
    allowed = lint_file(Path("src/repro/exec/executors.py"), config,
                        source=source)
    assert allowed == []


# -- CLI ----------------------------------------------------------------------


def test_main_exit_codes(capsys):
    assert main([str(_FIXTURES)]) == 1
    out = capsys.readouterr().out
    for code in ("DET001", "DET002", "DET003", "DET004", "DET005", "DET007",
                 "DET008"):
        assert code in out
    assert main([str(_FIXTURES / "suppressed_ok.py")]) == 0
    assert "clean" in capsys.readouterr().out


def test_finding_render_includes_hint():
    findings = lint_file(_FIXTURES / "det001_wall_clock.py")
    rendered = findings[0].render()
    assert "DET001" in rendered and "hint:" in rendered
