"""Runtime sanitizers: planted bugs are caught, clean runs pass."""

from repro.analysis.sanitize import (
    Monitor,
    attach_if_active,
    first_divergence,
    note_mutation,
    sanitized_run,
    session,
)
from repro.sim.engine import Environment
from repro.sim.resources import Resource


def _monitored_env():
    env = Environment()
    attach_if_active(env, label="toy")
    return env


# -- determinism sanitizer ----------------------------------------------------


def test_clean_run_passes_all_sanitizers():
    def run():
        env = _monitored_env()
        resource = Resource(env, capacity=1)

        def proc(env):
            yield from resource.serve(1.0)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        return env.now

    result, report = sanitized_run(run)
    assert result == 2.0
    assert report.ok, report.render()
    assert "OK (both runs bit-identical)" in report.render()


def test_planted_nondeterminism_is_localized():
    calls = []

    def run():
        calls.append(None)
        delay = 1.0 if len(calls) == 1 else 2.0  # differs between runs

        env = _monitored_env()

        def proc(env):
            yield env.timeout(delay)

        env.process(proc(env))
        env.run()

    _, report = sanitized_run(run)
    assert not report.ok
    assert report.divergences
    finding = report.divergences[0]
    assert finding.sanitizer == "determinism"
    # Localized to this file's coroutine layer, at the diverging
    # Timeout event itself (not the downstream Process-end event).
    assert "test_sanitize.py" in finding.message
    assert "Timeout" in finding.message


def test_environment_count_mismatch_is_a_divergence():
    calls = []

    def tick(env):
        yield env.timeout(1.0)

    def run():
        calls.append(None)
        for _ in range(len(calls)):  # run 2 builds one env more
            env = _monitored_env()
            env.process(tick(env))
            env.run()

    _, report = sanitized_run(run)
    assert not report.ok
    assert any("environments" in f.message for f in report.divergences)


def test_first_divergence_on_hand_fed_monitors():
    class FakeEvent:
        callbacks = []

    a, b = Monitor("a"), Monitor("b")
    for seq in range(3):
        a.note_event(float(seq), seq, FakeEvent())
        b.note_event(float(seq), seq, FakeEvent())
    assert first_divergence(a, b) is None
    b.note_event(9.0, 3, FakeEvent())
    layer, index, got_a, got_b = first_divergence(a, b)
    assert layer == "<engine>"
    assert index == 3
    assert got_a is None and "9.0" in got_b


# -- leak sanitizer -----------------------------------------------------------


def test_planted_resource_leak_is_reported():
    def run():
        env = _monitored_env()
        resource = Resource(env, capacity=1)

        def hog(env):
            req = resource.request()
            yield req
            yield env.timeout(1.0)
            # request() without release(): the planted leak

        env.process(hog(env))
        env.run()

    _, report = sanitized_run(run)
    assert not report.ok
    assert any(
        "slot(s) still held" in f.message for f in report.leaks
    ), report.render()
    assert all(f.sanitizer == "leak" for f in report.leaks)


def test_stranded_waiter_is_reported():
    def run():
        env = _monitored_env()
        resource = Resource(env, capacity=1)

        def hog(env):
            yield resource.request()
            yield env.timeout(1.0)

        def stranded(env):
            yield resource.request()  # never granted: hog never releases

        env.process(hog(env))
        env.process(stranded(env))
        env.run()

    _, report = sanitized_run(run)
    assert any("waiter(s) still queued" in f.message for f in report.leaks)


def test_released_resource_is_not_a_leak():
    def run():
        env = _monitored_env()
        resource = Resource(env, capacity=1)

        def polite(env):
            yield from resource.serve(1.0)

        env.process(polite(env))
        env.run()

    _, report = sanitized_run(run)
    assert report.ok, report.render()


# -- race detector ------------------------------------------------------------


class _Ledger:
    """A shared object with no declared tie-break discipline."""

    def __init__(self):
        self.value = 0


class _FifoLedger(_Ledger):
    _san_tiebreak = "fifo"


def _race_run(ledger_cls):
    def run():
        env = _monitored_env()
        ledger = ledger_cls()

        def bump(env):
            yield env.timeout(1.0)  # both processes wake at t=1.0
            note_mutation(env, ledger, "bump")
            ledger.value += 1

        env.process(bump(env))
        env.process(bump(env))
        env.run()

    return run


def test_same_timestamp_multi_actor_mutation_is_a_race():
    _, report = sanitized_run(_race_run(_Ledger))
    assert not report.ok
    assert len(report.races) == 1
    finding = report.races[0]
    assert "_Ledger" in finding.subject
    assert "2 actors" in finding.message and "no" in finding.message


def test_declared_tiebreak_silences_the_race():
    _, report = sanitized_run(_race_run(_FifoLedger))
    assert report.ok, report.render()


def test_different_timestamps_are_not_a_race():
    def run():
        env = _monitored_env()
        ledger = _Ledger()

        def bump(env, at):
            yield env.timeout(at)
            note_mutation(env, ledger, "bump")
            ledger.value += 1

        env.process(bump(env, 1.0))
        env.process(bump(env, 2.0))
        env.run()

    _, report = sanitized_run(run)
    assert report.ok, report.render()


# -- session plumbing ---------------------------------------------------------


def test_attach_only_inside_session():
    env = Environment()
    attach_if_active(env)  # no session open
    assert env.monitor is None
    with session() as s:
        attach_if_active(env, label="fleet")
        assert env.monitor is not None
        assert s.monitors == [env.monitor]
    env2 = Environment()
    attach_if_active(env2)  # session closed again
    assert env2.monitor is None


def test_monitor_never_schedules_events():
    """Bit-identity spot check: same event count with and without."""

    def workload(env):
        resource = Resource(env, capacity=1)

        def proc(env):
            yield from resource.serve(1.0)

        env.process(proc(env))
        env.process(proc(env))
        env.run()

    plain = Environment()
    workload(plain)
    with session():
        monitored = Environment()
        attach_if_active(monitored)
        workload(monitored)
        assert monitored.now == plain.now
        assert monitored.monitor.events > 0
