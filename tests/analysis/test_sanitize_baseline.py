"""Sanitizer zero-perturbation pin: monitored runs stay bit-identical.

The monitor is pure bookkeeping — attaching it must not add, drop, or
reorder a single event. This pins the monitored fig7a reference workload
to the same 439-event / makespan baseline as ``tests/obs/test_overhead``
(measured on the seed tree, before any instrumentation existed).
"""

from repro.analysis.sanitize import sanitized_run, session
from repro.bench.harness import dump_files
from repro.core.config import RuntimeConfig
from repro.systems import build
from repro.units import KiB, MiB

_BASELINE_EVENTS = 439
_BASELINE_MAKESPAN = 0.06173009922862135


def _fig7a_fleet():
    config = RuntimeConfig(
        log_region_bytes=MiB(4), state_region_bytes=MiB(16),
        hugeblock_bytes=KiB(32),
    )
    return build("microfs", nprocs=4, config=config,
                 partition_bytes=2 * MiB(32) + MiB(64), seed=2)


def test_monitored_run_is_bit_identical_to_baseline():
    with session() as s:
        fleet = _fig7a_fleet()  # registry attaches the monitor
        makespan = fleet.makespan(dump_files(MiB(32)))
    assert makespan == _BASELINE_MAKESPAN
    (monitor,) = s.monitors
    assert monitor.events == _BASELINE_EVENTS
    assert s.finish() == []  # no leaks, no races


def test_sanitized_double_run_passes_and_reproduces_baseline():
    def run():
        fleet = _fig7a_fleet()
        return fleet.makespan(dump_files(MiB(32)))

    makespan, report = sanitized_run(run)
    assert makespan == _BASELINE_MAKESPAN
    assert report.ok, report.render()
    assert sum(m.events for m in report.run1.monitors) == _BASELINE_EVENTS
