"""Tests for the CoMD proxy app and checkpoint drivers."""

import pytest

from repro.apps import CoMDConfig, CoMDProxy, Deployment
from repro.apps.checkpoint import CheckpointStats, n1_checkpoint
from repro.bench import calibration as cal
from repro.core.config import RuntimeConfig
from repro.units import GiB, MiB


def test_weak_scaling_config_matches_paper_totals():
    """32K atoms/rank, 10 ckpts, 448 procs => ~700 GB total (§IV-H)."""
    config = CoMDConfig.weak_scaling()
    total = config.total_checkpoint_bytes(448)
    assert 650e9 < total < 750e9


def test_strong_scaling_config_matches_paper_totals():
    """Fixed 86 GB across 10 checkpoints regardless of process count."""
    config = CoMDConfig.strong_scaling(nprocs=448)
    total = config.total_checkpoint_bytes(448)
    assert 70e9 < total < 95e9
    # Strong scaling: per-rank size shrinks with process count.
    assert (CoMDConfig.strong_scaling(nprocs=56).checkpoint_bytes_per_rank
            > CoMDConfig.strong_scaling(nprocs=448).checkpoint_bytes_per_rank)


def test_compute_time_scales_with_atoms():
    small = CoMDConfig(atoms_per_rank=1000)
    large = CoMDConfig(atoms_per_rank=4000)
    assert large.compute_seconds_per_phase == pytest.approx(
        4 * small.compute_seconds_per_phase
    )


def test_rank_main_collects_stats():
    dep = Deployment(seed=21, deterministic_devices=True)
    job, plan = dep.submit("comd", nprocs=4, devices=2, bytes_per_device=GiB(4))
    proxy = CoMDProxy(CoMDConfig(atoms_per_rank=1000, checkpoints=4))
    config = RuntimeConfig(log_region_bytes=MiB(1), state_region_bytes=MiB(8))
    mpi_job = dep.run_job(job, plan, proxy.rank_main, config=config)
    for stats in mpi_job.results():
        assert len(stats.checkpoint_times) == 4
        assert stats.compute_time > 0
        assert stats.bytes_written == 4 * 1000 * cal.COMD_BYTES_PER_ATOM
        assert 0 < stats.progress_rate() < 1


def test_compute_jitter_zero_is_deterministic():
    config = CoMDConfig(atoms_per_rank=1000, compute_jitter=0.0)
    proxy = CoMDProxy(config)
    import numpy as np
    rng = np.random.default_rng(0)
    assert proxy._compute_time(rng) == config.compute_seconds_per_phase


def test_n1_pattern_driver():
    dep = Deployment(seed=22, deterministic_devices=True)
    job, plan = dep.submit("n1", nprocs=4, devices=1, bytes_per_device=GiB(4))
    config = RuntimeConfig(log_region_bytes=MiB(1), state_region_bytes=MiB(8))

    def rank_main(shim, comm):
        stats = CheckpointStats()
        yield from shim.mkdir("/ckpt")
        yield from n1_checkpoint(shim, comm, 0, MiB(4), stats)
        return stats

    mpi_job = dep.run_job(job, plan, rank_main, config=config)
    for stats in mpi_job.results():
        assert stats.bytes_written == MiB(4)
        assert len(stats.checkpoint_times) == 1
