"""Tests for incremental checkpointing and compression (§II-B extras)."""

import pytest

from repro.apps.compression import CompressionSpec, compressed_checkpoint, compressed_restore
from repro.apps.incremental import IncrementalCheckpointer, IncrementalConfig
from repro.bench.fleet import MicroFSFleet
from repro.errors import RecoveryError
from repro.units import GiB, MiB


@pytest.fixture
def shim():
    return MicroFSFleet(1, partition_bytes=GiB(1)).clients[0]


def run(shim, gen):
    return shim.env.run_until_complete(shim.env.process(gen))


# -- incremental -------------------------------------------------------------


def test_incremental_config_validation():
    with pytest.raises(ValueError):
        IncrementalConfig(state_bytes=MiB(1), dirty_fraction=1.5)
    with pytest.raises(ValueError):
        IncrementalConfig(state_bytes=0)
    assert IncrementalConfig(state_bytes=MiB(10)).regions == 10


def test_full_then_incremental_schedule(shim):
    config = IncrementalConfig(state_bytes=MiB(64), dirty_fraction=0.25, full_interval=4)
    inc = IncrementalCheckpointer(shim, config)

    def scenario():
        metas = []
        for step in range(8):
            metas.append((yield from inc.write_checkpoint(step)))
        return metas

    metas = run(shim, scenario())
    assert [m.full for m in metas] == [True, False, False, False] * 2
    for meta in metas:
        if meta.full:
            assert meta.regions_written == config.regions
        else:
            assert meta.regions_written < config.regions


def test_incremental_reduces_volume(shim):
    config = IncrementalConfig(state_bytes=MiB(64), dirty_fraction=0.2, full_interval=10)
    inc = IncrementalCheckpointer(shim, config)

    def scenario():
        for step in range(5):
            yield from inc.write_checkpoint(step)

    run(shim, scenario())
    full_volume = 5 * MiB(64)
    assert inc.bytes_written < 0.5 * full_volume


def test_restore_reads_full_plus_increments(shim):
    config = IncrementalConfig(state_bytes=MiB(32), dirty_fraction=0.3, full_interval=3)
    inc = IncrementalCheckpointer(shim, config)

    def scenario():
        for step in range(5):  # full at 0, 3; increments 1,2,4
            yield from inc.write_checkpoint(step)
        return (yield from inc.restore())

    total = run(shim, scenario())
    # Restore = full at step 3 + increment at step 4.
    expected = inc.history[3].nbytes + inc.history[4].nbytes
    assert total == expected


def test_restore_without_full_raises(shim):
    config = IncrementalConfig(state_bytes=MiB(32))
    inc = IncrementalCheckpointer(shim, config)

    def scenario():
        yield from inc.restore()

    with pytest.raises(RecoveryError):
        run(shim, scenario())


def test_incremental_deterministic_across_seeds(shim):
    config = IncrementalConfig(state_bytes=MiB(32), dirty_fraction=0.5)
    a = IncrementalCheckpointer(shim, config, seed=9)
    b = IncrementalCheckpointer(shim, config, seed=9)
    assert a._dirty_regions(1) == b._dirty_regions(1)


# -- compression ---------------------------------------------------------------


def test_compression_spec_validation():
    with pytest.raises(ValueError):
        CompressionSpec("bad", ratio=0.5, compress_bandwidth=1e9, decompress_bandwidth=1e9)
    lz4 = CompressionSpec.lz4()
    assert lz4.ratio > 1.0


def test_compressed_checkpoint_writes_fewer_bytes(shim):
    spec = CompressionSpec.lz4()

    def scenario():
        out = yield from compressed_checkpoint(shim, "/c.z", MiB(64), spec)
        return out

    out = run(shim, scenario())
    assert out == int(MiB(64) / spec.ratio)
    assert shim.stat("/c.z").size == out


def test_compression_tradeoff_crossover():
    """Compression wins when the device is shared (IO-bound), loses when
    one rank owns the bandwidth (CPU-bound) — the classic crossover."""
    def dump_time(nprocs, compress):
        fleet = MicroFSFleet(nprocs, partition_bytes=MiB(512), seed=4)
        spec = CompressionSpec.zstd()
        env = fleet.env
        finish = []

        def work(i, shim):
            if compress:
                yield from compressed_checkpoint(shim, "/c.dat", MiB(64), spec)
            else:
                fd = yield from shim.open("/c.dat", "w")
                yield from shim.write(fd, MiB(64))
                yield from shim.fsync(fd)
                yield from shim.close(fd)
            finish.append(env.now)

        for i, client in enumerate(fleet.clients):
            env.process(work(i, client))
        env.run()
        return max(finish)

    # Single rank: zstd at 0.7 GB/s is slower than a 2.2 GB/s SSD.
    assert dump_time(1, compress=True) > dump_time(1, compress=False)
    # 28 ranks sharing one SSD: halving the bytes wins.
    assert dump_time(28, compress=True) < dump_time(28, compress=False)


def test_compressed_restore(shim):
    spec = CompressionSpec.lz4()

    def scenario():
        stored = yield from compressed_checkpoint(shim, "/c.z", MiB(16), spec)
        yield from compressed_restore(shim, "/c.z", stored, spec)

    run(shim, scenario())
