"""Tests for the miniAMR proxy."""

import numpy as np
import pytest

from repro.apps import Deployment
from repro.apps.miniamr import MiniAMRConfig, MiniAMRProxy
from repro.core.config import RuntimeConfig
from repro.units import GiB, MiB


def test_config_validation():
    with pytest.raises(ValueError):
        MiniAMRConfig(mean_blocks_per_rank=0)
    with pytest.raises(ValueError):
        MiniAMRConfig(refinement_skew=-1)
    with pytest.raises(ValueError):
        MiniAMRConfig(churn=2.0)


def test_zero_skew_is_equal_sizes():
    proxy = MiniAMRProxy(MiniAMRConfig(refinement_skew=0.0))
    rng = np.random.default_rng(0)
    draws = {proxy._initial_blocks(rng) for _ in range(10)}
    assert draws == {float(proxy.config.mean_blocks_per_rank)}


def test_skew_preserves_mean_but_spreads():
    proxy = MiniAMRProxy(MiniAMRConfig(refinement_skew=0.8, mean_blocks_per_rank=1000))
    rng = np.random.default_rng(1)
    draws = [proxy._initial_blocks(rng) for _ in range(4000)]
    assert np.mean(draws) == pytest.approx(1000, rel=0.1)
    assert np.std(draws) > 300


def test_churn_mixes_toward_fresh_draws():
    config = MiniAMRConfig(refinement_skew=0.5, churn=1.0)
    proxy = MiniAMRProxy(config)
    rng = np.random.default_rng(2)
    # churn=1: refine ignores the old value entirely.
    old = 1e9
    refined = proxy._refine(old, rng)
    assert refined < old / 100


def test_rank_main_runs_end_to_end():
    dep = Deployment(seed=40, deterministic_devices=True)
    config = MiniAMRConfig(mean_blocks_per_rank=32, checkpoints=3,
                           refinement_skew=0.5, block_state_bytes=64 * 1024)
    proxy = MiniAMRProxy(config, seed=40)
    job, plan = dep.submit("amr", nprocs=4, devices=2, bytes_per_device=GiB(4))
    runtime_config = RuntimeConfig(log_region_bytes=MiB(1), state_region_bytes=MiB(8))
    mpi_job = dep.run_job(job, plan, proxy.rank_main, config=runtime_config)
    sizes = set()
    for stats in mpi_job.results():
        assert len(stats.checkpoint_times) == 3
        assert stats.compute_time > 0
        sizes.add(stats.bytes_written)
    # Skew: ranks wrote different volumes.
    assert len(sizes) > 1
