"""Tests for the MTBF campaign simulator and Young/Daly intervals."""

import math

import pytest

from repro.apps.mtbf import (
    CampaignConfig,
    FailureCampaign,
    daly_interval,
    young_interval,
)
from repro.bench.fleet import MicroFSFleet
from repro.units import GiB, MiB


def make_shim(partition=GiB(2)):
    return MicroFSFleet(1, partition_bytes=partition).clients[0]


def run_campaign(shim, config, seed=0):
    campaign = FailureCampaign(shim, config, seed=seed)
    return shim.env.run_until_complete(shim.env.process(campaign.run()))


# -- formulas -----------------------------------------------------------------


def test_young_formula():
    assert young_interval(1800.0, 10.0) == pytest.approx(math.sqrt(2 * 10 * 1800))


def test_daly_close_to_young_when_cost_small():
    young = young_interval(3600.0, 1.0)
    daly = daly_interval(3600.0, 1.0)
    assert abs(daly - young) / young < 0.05


def test_daly_degenerate_regime():
    assert daly_interval(10.0, 9.0) == 10.0


def test_formula_validation():
    with pytest.raises(ValueError):
        young_interval(0, 1)
    with pytest.raises(ValueError):
        daly_interval(1, 0)


# -- campaigns ------------------------------------------------------------------


def test_no_failures_completes_cleanly():
    shim = make_shim()
    config = CampaignConfig(
        total_compute=10.0, checkpoint_interval=2.0,
        checkpoint_bytes=MiB(16), mtbf=1e9,
    )
    result = run_campaign(shim, config)
    assert result.failures == 0
    assert result.compute_done == pytest.approx(10.0)
    # 4 checkpoints (no final one needed at completion).
    assert result.checkpoints_written == 4
    assert result.effective_progress > 0.9


def test_failures_cause_rollback_and_lost_work():
    shim = make_shim()
    config = CampaignConfig(
        total_compute=60.0, checkpoint_interval=5.0,
        checkpoint_bytes=MiB(16), mtbf=8.0, restart_cost=0.5,
    )
    result = run_campaign(shim, config, seed=3)
    assert result.failures > 0
    assert result.lost_work > 0
    assert result.compute_done == pytest.approx(60.0)
    assert result.wall_time > 60.0
    assert 0.0 < result.effective_progress < 1.0
    assert result.restarts <= result.failures


def test_common_random_numbers_reproducible():
    config = CampaignConfig(
        total_compute=30.0, checkpoint_interval=4.0,
        checkpoint_bytes=MiB(8), mtbf=10.0,
    )
    a = run_campaign(make_shim(), config, seed=7)
    b = run_campaign(make_shim(), config, seed=7)
    assert a.wall_time == b.wall_time
    assert a.failures == b.failures


def test_higher_mtbf_means_better_progress():
    config_fragile = CampaignConfig(
        total_compute=40.0, checkpoint_interval=4.0,
        checkpoint_bytes=MiB(8), mtbf=6.0,
    )
    config_stable = CampaignConfig(
        total_compute=40.0, checkpoint_interval=4.0,
        checkpoint_bytes=MiB(8), mtbf=600.0,
    )
    fragile = run_campaign(make_shim(), config_fragile, seed=5)
    stable = run_campaign(make_shim(), config_stable, seed=5)
    assert stable.effective_progress > fragile.effective_progress


def test_interval_sweep_has_interior_optimum():
    """Too-frequent checkpoints waste time dumping; too-rare ones lose
    big rollbacks: effective progress peaks at an interior interval."""
    def progress(interval, seed=11):
        config = CampaignConfig(
            total_compute=120.0, checkpoint_interval=interval,
            checkpoint_bytes=MiB(64), mtbf=15.0, restart_cost=0.2,
        )
        return run_campaign(make_shim(GiB(8)), config, seed=seed).effective_progress

    tiny = progress(0.2)     # dump-dominated
    mid = progress(3.0)      # near Daly for C~0.03,M=15
    huge = progress(60.0)    # rollback-dominated
    assert mid > tiny
    assert mid > huge


def test_config_validation():
    with pytest.raises(ValueError):
        CampaignConfig(total_compute=0, checkpoint_interval=1,
                       checkpoint_bytes=1, mtbf=1)
    with pytest.raises(ValueError):
        CampaignConfig(total_compute=1, checkpoint_interval=1,
                       checkpoint_bytes=0, mtbf=1)


# -- refactored failure/rollback path ----------------------------------------


def _deployment_campaign(fault_times=None, timeline=None):
    """One campaign rank on the paper testbed (full NVMe-oF data path)."""
    from repro.apps.deployment import Deployment

    dep = Deployment(seed=3, deterministic_devices=True)
    job, plan = dep.submit("camp", nprocs=1, procs_per_node=1)
    out = {}

    def main(shim, comm):
        config = CampaignConfig(
            total_compute=120.0, checkpoint_interval=6.0,
            checkpoint_bytes=MiB(4), mtbf=40.0, restart_cost=2.0,
        )
        campaign = FailureCampaign(
            shim, config, seed=11, rank=comm.rank,
            fault_times=fault_times, timeline=timeline,
        )
        out[comm.rank] = yield from campaign.run()

    dep.run_job(job, plan, main)
    return out[0]


def test_campaign_output_pinned_for_fixed_seed():
    """Regression pin: the fail/rollback/restore dedup must not move a
    single float for a fixed seed. Captured before the refactor."""
    result = _deployment_campaign()
    got = (
        result.wall_time, result.compute_done, result.failures,
        result.checkpoints_written, result.restarts, result.lost_work,
        result.checkpoint_time, result.restart_time,
    )
    assert got == (
        135.28233316929362, 120.0, 3, 19, 3,
        9.236233356566075, 0.039839130909305354, 0.005562380000014855,
    )


def test_injector_fed_fault_times_override_the_hazard_draw():
    # Strikes at fixed absolute times replace the campaign's own clock.
    quiet = _deployment_campaign(fault_times=[])
    assert quiet.failures == 0 and quiet.lost_work == 0.0
    busy = _deployment_campaign(fault_times=[10.0, 30.0, 55.0])
    assert busy.failures == 3
    assert busy.restarts == 3


def test_injector_fed_campaign_records_a_timeline():
    from repro.faults.timeline import FaultTimeline

    timeline = FaultTimeline()
    result = _deployment_campaign(fault_times=[10.0, 30.0], timeline=timeline)
    assert result.failures == 2
    assert len(timeline.records) == 2
    for record in timeline.records:
        assert record.kind == "node-crash"
        assert record.recovery_level == 1
        assert record.bytes_replayed == MiB(4)
        assert record.recovered_at is not None
