"""Tests for the node-local burst buffer baseline."""

import pytest

from repro.baselines.burstfs import BurstBufferCluster
from repro.errors import FileNotFound, RecoveryError
from repro.sim import Environment
from repro.units import GiB, MiB


def make_cluster(nodes=("comp00", "comp01")):
    env = Environment()
    return env, BurstBufferCluster(env, list(nodes), namespace_bytes=GiB(8))


def run(env, gen):
    return env.run_until_complete(env.process(gen))


def test_local_write_read_roundtrip():
    env, cluster = make_cluster()
    client = cluster.client("r0", "comp00")

    def scenario():
        fd = yield from client.open("/ckpt0", "w")
        yield from client.write(fd, MiB(16))
        yield from client.fsync(fd)
        yield from client.close(fd)
        fd = yield from client.open("/ckpt0", "r")
        pieces = yield from client.read(fd, MiB(16))
        yield from client.close(fd)
        return sum(p.nbytes for p in pieces)

    assert run(env, scenario()) == MiB(16)
    assert cluster.node_ssds["comp00"].counters.get("bytes_written") >= MiB(16)
    assert cluster.node_ssds["comp01"].counters.get("bytes_written") == 0


def test_checkpoints_scale_with_compute_nodes():
    """Node-local aggregate bandwidth grows with node count — the burst
    buffer's strength."""
    def dump_time(nodes):
        env, cluster = make_cluster([f"comp{i:02d}" for i in range(nodes)])
        finish = []

        def work(i):
            client = cluster.client(f"r{i}", f"comp{i:02d}")
            fd = yield from client.open(f"/ckpt{i}", "w")
            yield from client.write(fd, MiB(256))
            yield from client.fsync(fd)
            yield from client.close(fd)
            finish.append(env.now)

        for i in range(nodes):
            env.process(work(i))
        env.run()
        return max(finish)

    # Perfectly parallel: same per-node time regardless of node count.
    assert dump_time(4) == pytest.approx(dump_time(1), rel=0.05)


def test_drain_pushes_to_pfs():
    env, cluster = make_cluster()
    client = cluster.client("r0", "comp00")

    def scenario():
        fd = yield from client.open("/ckpt0", "w")
        yield from client.write(fd, MiB(8))
        yield from client.close(fd)
        assert cluster.drain_lag_files() == 1
        yield from client.drain("/ckpt0")

    run(env, scenario())
    assert cluster.drain_lag_files() == 0
    assert cluster.pfs.counters.get("bytes_written") == MiB(8)


def test_node_failure_loses_undrained_checkpoint():
    """The disaggregation argument: checkpoint and process share a
    failure domain, so an undrained checkpoint dies with the node."""
    env, cluster = make_cluster()
    client = cluster.client("r0", "comp00")

    def write_only():
        fd = yield from client.open("/ckpt0", "w")
        yield from client.write(fd, MiB(8))
        yield from client.close(fd)

    run(env, write_only())
    cluster.fail_node("comp00")
    survivor = cluster.client("r1", "comp01")

    def try_read():
        fd = yield from survivor.open("/ckpt0", "r")
        yield from survivor.read(fd, MiB(8))

    with pytest.raises(RecoveryError):
        run(env, try_read())


def test_node_failure_recovers_from_drained_copy():
    env, cluster = make_cluster()
    client = cluster.client("r0", "comp00")

    def write_and_drain():
        fd = yield from client.open("/ckpt0", "w")
        yield from client.write(fd, MiB(8))
        yield from client.close(fd)
        yield from client.drain("/ckpt0")

    run(env, write_and_drain())
    cluster.fail_node("comp00")
    survivor = cluster.client("r1", "comp01")

    def read_back():
        fd = yield from survivor.open("/ckpt0", "r")
        pieces = yield from survivor.read(fd, MiB(8))
        return sum(p.nbytes for p in pieces)

    assert run(env, read_back()) == MiB(8)


def test_cross_node_read_requires_drain():
    env, cluster = make_cluster()
    writer = cluster.client("r0", "comp00")
    reader = cluster.client("r1", "comp01")

    def scenario():
        fd = yield from writer.open("/ckpt0", "w")
        yield from writer.write(fd, MiB(4))
        yield from writer.close(fd)
        fd = yield from reader.open("/ckpt0", "r")
        yield from reader.read(fd, MiB(4))

    with pytest.raises(RecoveryError):
        run(env, scenario())


def test_missing_file():
    env, cluster = make_cluster()
    client = cluster.client("r0", "comp00")

    def scenario():
        yield from client.open("/ghost", "r")

    with pytest.raises(FileNotFound):
        run(env, scenario())
