"""Tests for OrangeFS, GlusterFS, Crail, SPDK, and Lustre models."""

import pytest

from repro.apps import Deployment
from repro.baselines import (
    CrailCluster,
    GlusterFSCluster,
    LustreCluster,
    OrangeFSCluster,
    RawSPDKClient,
)
from repro.fabric.transport import LocalPCIeTransport
from repro.metrics import coefficient_of_variation
from repro.sim import Environment
from repro.units import GiB, MiB


def run(env, gen):
    return env.run_until_complete(env.process(gen))


def dump(client, nbytes, path):
    def scenario():
        t0 = client.env.now
        fd = yield from client.open(path, "w")
        yield from client.write(fd, nbytes)
        yield from client.fsync(fd)
        yield from client.close(fd)
        return client.env.now - t0
    return scenario()


def parallel_dump(env, clients, nbytes):
    finish = []

    def proc(i, client):
        yield from dump(client, nbytes, f"/ckpt/rank{i:04d}.dat")
        finish.append(env.now)

    for i, client in enumerate(clients):
        env.process(proc(i, client))
    env.run()
    return max(finish)


# ---------------------------------------------------------------------------
# OrangeFS
# ---------------------------------------------------------------------------


def test_orangefs_stripes_across_all_servers():
    dep = Deployment(seed=1, deterministic_devices=True)
    cluster = OrangeFSCluster(dep, GiB(8))
    client = cluster.client("c0")
    run(dep.env, dump(client, MiB(16), "/f"))
    loads = cluster.bytes_per_server()
    assert all(load > 0 for load in loads)
    assert coefficient_of_variation(loads) < 0.05


def test_orangefs_peak_fraction_of_hardware():
    """Figure 1: OrangeFS saturates well below hardware peak (~41%)."""
    dep = Deployment(seed=2, deterministic_devices=True)
    cluster = OrangeFSCluster(dep, GiB(16))
    clients = [cluster.client(f"c{i}") for i in range(56)]
    nbytes = MiB(64)
    elapsed = parallel_dump(dep.env, clients, nbytes)
    bandwidth = 56 * nbytes / elapsed
    fraction = bandwidth / dep.aggregate_write_bandwidth()
    assert 0.25 < fraction < 0.55


def test_orangefs_create_serialization():
    dep = Deployment(seed=3, deterministic_devices=True)
    cluster = OrangeFSCluster(dep, GiB(4))
    env = dep.env
    n = 64
    t0 = env.now

    def creator(i):
        client = cluster.client(f"c{i}")
        fd = yield from client.open(f"/f{i:03d}", "w")
        yield from client.close(fd)

    for i in range(n):
        env.process(creator(i))
    env.run()
    rate = n / (env.now - t0)
    # Single dir lock + distributed MDS: thousands/s, not hundreds of
    # thousands (NVMe-CR territory).
    assert rate < 100_000


def test_orangefs_metadata_accounting():
    dep = Deployment(seed=4, deterministic_devices=True)
    cluster = OrangeFSCluster(dep, GiB(4))
    client = cluster.client("c0")

    def scenario():
        for i in range(10):
            fd = yield from client.open(f"/f{i}", "w")
            yield from client.close(fd)

    run(dep.env, scenario())
    assert cluster.metadata_bytes_per_server() > 0


# ---------------------------------------------------------------------------
# GlusterFS
# ---------------------------------------------------------------------------


def test_glusterfs_whole_file_on_one_brick():
    dep = Deployment(seed=5, deterministic_devices=True)
    cluster = GlusterFSCluster(dep, GiB(8))
    client = cluster.client("c0")
    run(dep.env, dump(client, MiB(16), "/f"))
    loads = cluster.bytes_per_server()
    assert sum(1 for load in loads if load > 0) == 1


def test_glusterfs_load_imbalance_at_low_concurrency():
    """Figure 7(b): consistent hashing leaves bricks idle at 28 files."""
    dep = Deployment(seed=6, deterministic_devices=True)
    cluster = GlusterFSCluster(dep, GiB(8))
    clients = [cluster.client(f"c{i}") for i in range(28)]
    parallel_dump(dep.env, clients, MiB(8))
    cov = coefficient_of_variation(cluster.bytes_per_server())
    assert cov > 0.2


def test_glusterfs_balance_improves_with_scale():
    def cov_at(nfiles):
        dep = Deployment(seed=7, deterministic_devices=True)
        cluster = GlusterFSCluster(dep, GiB(16))
        clients = [cluster.client(f"c{i}") for i in range(nfiles)]
        parallel_dump(dep.env, clients, MiB(2))
        return coefficient_of_variation(cluster.bytes_per_server())

    assert cov_at(224) < cov_at(28)


def test_glusterfs_peak_fraction_of_hardware():
    """Figure 1: GlusterFS approaches ~84% of hardware peak at scale;
    hash imbalance keeps it below the per-brick ceiling."""
    def fraction_at(nclients, seed):
        dep = Deployment(seed=seed, deterministic_devices=True)
        cluster = GlusterFSCluster(dep, GiB(16))
        clients = [cluster.client(f"c{i}") for i in range(nclients)]
        nbytes = MiB(32)
        elapsed = parallel_dump(dep.env, clients, nbytes)
        return nclients * nbytes / elapsed / dep.aggregate_write_bandwidth()

    mid = fraction_at(112, 8)
    assert 0.5 < mid < 0.95
    # More files -> smoother hashing -> closer to the ceiling.
    assert fraction_at(224, 88) > fraction_at(56, 89)


def test_glusterfs_creates_slower_than_orangefs():
    """Figure 8(b): GlusterFS create throughput < OrangeFS."""
    def create_rate(cluster_cls, seed):
        dep = Deployment(seed=seed, deterministic_devices=True)
        cluster = cluster_cls(dep, GiB(4))
        env = dep.env
        n = 128

        def creator(i):
            client = cluster.client(f"c{i}")
            fd = yield from client.open(f"/f{i:03d}", "w")
            yield from client.close(fd)

        for i in range(n):
            env.process(creator(i))
        env.run()
        return n / env.now

    assert create_rate(GlusterFSCluster, 9) < create_rate(OrangeFSCluster, 10)


# ---------------------------------------------------------------------------
# Crail
# ---------------------------------------------------------------------------


def test_crail_single_storage_server():
    dep = Deployment(seed=11, deterministic_devices=True)
    cluster = CrailCluster(dep, GiB(8))
    client = cluster.client("c0", "comp00")
    run(dep.env, dump(client, MiB(16), "/f"))
    assert cluster.ssd.counters.get("bytes_written") >= MiB(16)


def test_crail_mds_rpcs_per_block():
    dep = Deployment(seed=12, deterministic_devices=True)
    cluster = CrailCluster(dep, GiB(8))
    client = cluster.client("c0", "comp00")
    run(dep.env, dump(client, MiB(16), "/f"))
    # open + close + 16 block allocations (1 MiB blocks).
    assert client.counters.get("mds_rpcs") >= 17


def test_crail_mds_bottleneck_at_high_concurrency():
    """The paper's §IV-A expectation: Crail's single MDS saturates."""
    def wall(nclients, seed):
        dep = Deployment(seed=seed, deterministic_devices=True)
        cluster = CrailCluster(dep, GiB(64))
        clients = [cluster.client(f"c{i}", f"comp{i % 16:02d}") for i in range(nclients)]
        return parallel_dump(dep.env, clients, MiB(16)) * nclients  # normalised

    # Per-client cost grows superlinearly past MDS saturation: the
    # aggregate (wall * n) grows faster than linear in n.
    assert wall(64, 13) / 64 > wall(8, 14) / 8


# ---------------------------------------------------------------------------
# SPDK raw
# ---------------------------------------------------------------------------


def test_spdk_matches_device_bandwidth():
    dep = Deployment(seed=15, deterministic_devices=True)
    node = dep.cluster.storage_nodes()[0].name
    ssd = dep.ssds[node]
    ns = ssd.create_namespace(GiB(8), owner_job="spdk")
    client = RawSPDKClient(
        dep.env, LocalPCIeTransport(dep.env, ssd), ns.nsid, 0, GiB(8)
    )
    elapsed = run(dep.env, dump(client, MiB(512), "/f"))
    floor = MiB(512) / ssd.spec.write_bandwidth
    assert floor <= elapsed < 1.1 * floor


# ---------------------------------------------------------------------------
# Lustre
# ---------------------------------------------------------------------------


def test_lustre_bandwidth_is_raid_limited():
    env = Environment()
    lustre = LustreCluster(env)

    def scenario():
        t0 = env.now
        yield from lustre.write_file("/ckpt", GiB(1))
        return env.now - t0

    elapsed = run(env, scenario())
    bandwidth = GiB(1) / elapsed
    # 4 servers x 1.5 GB/s = 6 GB/s aggregate ceiling.
    assert bandwidth < lustre.aggregate_bandwidth()
    assert bandwidth > 0.8 * lustre.aggregate_bandwidth()


def test_lustre_read_back():
    env = Environment()
    lustre = LustreCluster(env)

    def scenario():
        yield from lustre.write_file("/ckpt", MiB(256))
        nbytes = yield from lustre.read_file("/ckpt")
        return nbytes

    assert run(env, scenario()) == MiB(256)


def test_lustre_missing_file():
    from repro.errors import FileNotFound

    env = Environment()
    lustre = LustreCluster(env)

    def scenario():
        yield from lustre.read_file("/missing")

    with pytest.raises(FileNotFound):
        run(env, scenario())
