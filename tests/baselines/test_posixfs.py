"""Tests for the ext4/XFS kernel filesystem models."""

import numpy as np
import pytest

from repro.baselines.posixfs import KernelFilesystem
from repro.errors import FileNotFound
from repro.nvme import SSD
from repro.sim import Environment
from repro.units import GiB, MiB

from tests.conftest import deterministic_spec


def make_kfs(variant, env=None):
    env = env or Environment()
    ssd = SSD(env, deterministic_spec(), "local0", rng=np.random.default_rng(0))
    ns = ssd.create_namespace(GiB(64), owner_job="kernelfs")
    return env, KernelFilesystem(env, ssd, ns, variant)


def run(env, gen):
    return env.run_until_complete(env.process(gen))


def dump(client, nbytes, path="/ckpt.dat"):
    def scenario():
        t0 = client.env.now
        fd = yield from client.open(path, "w")
        yield from client.write(fd, nbytes)
        yield from client.fsync(fd)
        yield from client.close(fd)
        return client.env.now - t0
    return scenario()


def test_write_is_buffered_fsync_pays():
    env, kfs = make_kfs("xfs")
    client = kfs.client("c0")

    def scenario():
        fd = yield from client.open("/f", "w")
        t0 = env.now
        yield from client.write(fd, MiB(64))
        write_time = env.now - t0
        t1 = env.now
        yield from client.fsync(fd)
        fsync_time = env.now - t1
        yield from client.close(fd)
        return write_time, fsync_time

    write_time, fsync_time = run(env, scenario())
    # Buffered write ~ memcpy speed; fsync ~ device speed.
    assert write_time < MiB(64) / 2e9
    assert fsync_time > MiB(64) / 3e9


def test_ext4_slower_than_xfs_under_concurrency():
    """Figure 7(c): ext4 is much slower than XFS at full subscription,
    because per-4K-block allocation serialises on the shared lock."""
    def full_subscription(variant, nprocs=28):
        env, kfs = make_kfs(variant)
        done = []

        def proc(i):
            client = kfs.client(f"c{i}")
            yield from dump(client, MiB(64), path=f"/f{i}")
            done.append(env.now)

        for i in range(nprocs):
            env.process(proc(i))
        env.run()
        return max(done)

    xfs_time = full_subscription("xfs")
    ext4_time = full_subscription("ext4")
    assert ext4_time > 1.2 * xfs_time


def test_kernel_fraction_dominates():
    """Figure 7(c): kernel filesystems spend most wall time in-kernel."""
    env, kfs = make_kfs("xfs")
    client = kfs.client("c0")
    wall = run(env, dump(client, MiB(256)))
    assert client.kernel_fraction(wall) > 0.6


def test_read_path():
    env, kfs = make_kfs("xfs")
    client = kfs.client("c0")

    def scenario():
        fd = yield from client.open("/f", "w")
        yield from client.write(fd, MiB(4))
        yield from client.fsync(fd)
        yield from client.close(fd)
        fd = yield from client.open("/f", "r")
        pieces = yield from client.read(fd, MiB(4))
        yield from client.close(fd)
        return sum(p.nbytes for p in pieces)

    assert run(env, scenario()) == MiB(4)


def test_open_missing_raises():
    env, kfs = make_kfs("ext4")
    client = kfs.client("c0")

    def scenario():
        yield from client.open("/missing", "r")

    with pytest.raises(FileNotFound):
        run(env, scenario())


def test_shared_namespace_across_clients():
    env, kfs = make_kfs("xfs")
    a, b = kfs.client("a"), kfs.client("b")

    def scenario():
        fd = yield from a.open("/shared", "w")
        yield from a.write(fd, MiB(1))
        yield from a.fsync(fd)
        yield from a.close(fd)
        fd = yield from b.open("/shared", "r")
        yield from b.close(fd)
        return b.stat("/shared").size

    assert run(env, scenario()) == MiB(1)


def test_unlink():
    env, kfs = make_kfs("xfs")
    client = kfs.client("c0")

    def scenario():
        fd = yield from client.open("/f", "w")
        yield from client.close(fd)
        yield from client.unlink("/f")

    run(env, scenario())
    with pytest.raises(FileNotFound):
        client.stat("/f")
