"""Smoke test for the failover experiment (the acceptance gate)."""

import pytest

from repro.bench.failover import failover
from repro.units import ms


@pytest.mark.slow
def test_failover_raft_survives_with_zero_loss():
    table = failover(
        systems=("nvmecr-raft",), fault_rates=(5.0,), n_ops=60,
        repair_after=ms(300), seed=17,
    )
    assert len(table.rows) == 1
    assert table.column("faults")[0] >= 1  # a kill and/or a partition struck
    assert table.column("lost_ops") == [0]
    assert table.column("replicas_agree") == ["yes"]
    assert table.column("leader_changes")[0] >= 2  # real failovers happened
    assert table.column("ops_acked")[0] >= 60
    # Consensus instrumentation: elections were timed, entries counted.
    assert table.column("elect_p99_ms")[0] > 0.0
    assert table.column("commit_p99_ms")[0] > 0.0
    assert table.column("appends")[0] > 0


@pytest.mark.slow
def test_failover_baseline_comparison_runs():
    table = failover(
        systems=("nvmecr", "nvmecr-raft"), fault_rates=(5.0,), n_ops=40,
        repair_after=ms(300), seed=17,
    )
    by_system = dict(zip(table.column("system"), table.column("avail_gap_ms")))
    # The baseline's gap is repair-bound; the replicated control plane
    # recovers in about one election timeout.
    assert by_system["nvmecr"] > by_system["nvmecr-raft"]
