"""Tests for the bench harness: tables, drivers, and the fleet."""

import pytest

from repro.bench.fleet import MicroFSFleet, StandaloneRuntime
from repro.bench.harness import ResultTable, dump_files, parallel_clients, read_files
from repro.core.config import RuntimeConfig
from repro.units import MiB


# -- ResultTable ---------------------------------------------------------------


def test_table_add_and_column():
    table = ResultTable("t", ["a", "b"])
    table.add(1, 2.0)
    table.add(3, 4.0)
    assert table.column("a") == [1, 3]
    assert table.column("b") == [2.0, 4.0]


def test_table_row_arity_checked():
    table = ResultTable("t", ["a", "b"])
    with pytest.raises(ValueError):
        table.add(1)


def test_table_render_contains_everything():
    table = ResultTable("My Title", ["name", "value"])
    table.add("x", 0.123456)
    table.add("y", 12345.6)
    table.note("context line")
    out = table.render()
    assert "My Title" in out
    assert "x" in out and "0.123" in out
    assert "1.23e+04" in out or "12345" in out or "1.23e4" in out
    assert "note: context line" in out


def test_table_render_empty():
    table = ResultTable("empty", ["only"])
    assert "empty" in table.render()


# -- fleet + drivers ----------------------------------------------------------------


def test_fleet_builds_n_instances():
    fleet = MicroFSFleet(4, partition_bytes=MiB(128))
    assert len(fleet.instances) == 4
    assert len(fleet.clients) == 4
    # Partitions are disjoint slices of one namespace.
    offsets = sorted(fs.partition.offset for fs in fleet.instances)
    assert len(set(offsets)) == 4


def test_fleet_remote_mode_uses_nvmf():
    fleet = MicroFSFleet(2, partition_bytes=MiB(128), remote=True)
    desc = fleet.instances[0].data_plane.transport.description
    assert desc.startswith("nvmf:")


def test_fleet_global_namespace_mode():
    config = RuntimeConfig(
        private_namespace=False, log_region_bytes=MiB(1), state_region_bytes=MiB(8)
    )
    fleet = MicroFSFleet(2, config=config, partition_bytes=MiB(128),
                         global_namespace=True)
    assert fleet.instances[0].global_namespace is fleet.global_ns
    assert fleet.global_ns is not None


def test_standalone_runtime_surface():
    fleet = MicroFSFleet(1, partition_bytes=MiB(128))
    runtime = StandaloneRuntime(fleet.env, fleet.instances[0])
    assert runtime.microfs is fleet.instances[0]

    def lifecycle():
        yield from runtime.init()
        yield from runtime.finalize()

    fleet.env.run_until_complete(fleet.env.process(lifecycle()))


def test_parallel_clients_and_drivers_roundtrip():
    fleet = MicroFSFleet(3, partition_bytes=MiB(256))
    elapsed = parallel_clients(fleet.env, fleet.clients, dump_files(MiB(4)))
    assert elapsed > 0
    read_elapsed = parallel_clients(fleet.env, fleet.clients, read_files(MiB(4)))
    assert read_elapsed > 0
    for fs in fleet.instances:
        assert fs.counters.get("app_bytes_written") == MiB(4)
        assert fs.counters.get("app_bytes_read") == MiB(4)


def test_parallel_clients_requires_completion():
    fleet = MicroFSFleet(1, partition_bytes=MiB(128))

    def broken(i, client):
        yield from client.open("/missing", "r")  # raises

    with pytest.raises(Exception):
        parallel_clients(fleet.env, fleet.clients, broken)
