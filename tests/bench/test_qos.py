"""Acceptance tests for the qos experiment and its CLI wiring."""

import pytest

from repro.bench.qos import batching_round_trips, qos
from repro.cli import main as cli_main
from repro.errors import UnknownSystem
from repro.units import MiB


def _p99(table, system, mode, cls):
    for row in table.rows:
        if row[:3] == [system, mode, cls]:
            return row[table.columns.index("p99_ms")]
    raise AssertionError(f"no row for {system}/{mode}/{cls}")


def test_wrr_lowers_journal_p99_under_burst():
    """The acceptance property: JOURNAL-class p99 with WRR arbitration is
    strictly lower than FCFS under checkpoint-burst load."""
    table = qos(systems=("microfs",))
    wrr = _p99(table, "microfs", "wrr", "journal")
    fcfs = _p99(table, "microfs", "fcfs", "journal")
    assert wrr < fcfs
    # Journal traffic actually contended: both runs saw the same samples.
    n_col = table.columns.index("n")
    counts = {tuple(r[:3]): r[n_col] for r in table.rows}
    assert counts[("microfs", "fcfs", "journal")] == \
        counts[("microfs", "wrr", "journal")] > 0


def test_qos_experiment_covers_ckpt_data_class():
    table = qos(systems=("microfs",), modes=("wrr",))
    classes = {row[2] for row in table.rows}
    assert {"journal", "ckpt_data"} <= classes


def test_batching_reduces_round_trips_at_equal_payload():
    """The acceptance property: doorbell batching lowers the nvmf.rtt
    span count without moving a single payload byte."""
    rtt = batching_round_trips(nprocs=4, file_bytes=MiB(2))
    assert rtt["on"]["payload_bytes"] == rtt["off"]["payload_bytes"] > 0
    assert rtt["on"]["round_trips"] < rtt["off"]["round_trips"]


def test_qos_rejects_non_dataplane_systems():
    with pytest.raises(UnknownSystem):
        qos(systems=("glusterfs",))


def test_cli_qos_nvmecr_smoke(capsys):
    assert cli_main(["run", "qos", "--systems", "nvmecr"]) == 0
    out = capsys.readouterr().out
    assert "per-class latency" in out
    assert "journal" in out and "ckpt_data" in out
    assert "nvmecr" in out


def test_cli_qos_batching_smoke(capsys):
    assert cli_main(["run", "qos", "--batching"]) == 0
    out = capsys.readouterr().out
    assert "per-class latency" in out
    assert "journal" in out
    assert "nvmf.rtt" in out


def test_cli_qos_mode_flag(capsys):
    assert cli_main(["run", "qos", "--qos", "wrr"]) == 0
    out = capsys.readouterr().out
    assert "wrr" in out
    assert " fcfs " not in out


def test_cli_batching_flag_rejected_elsewhere(capsys):
    assert cli_main(["run", "fig7a", "--batching"]) == 2
    assert "qos" in capsys.readouterr().err
