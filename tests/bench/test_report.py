"""Tests for table export."""

import csv
import json

from repro.bench.harness import ResultTable
from repro.bench.report import export, to_csv, to_json


def sample_table():
    table = ResultTable("Figure 9 (weak): efficiency", ["procs", "eff"])
    table.add(56, 0.994)
    table.add(448, 0.999)
    table.note("anchor")
    return table


def test_to_csv_roundtrip():
    rows = list(csv.reader(to_csv(sample_table()).splitlines()))
    assert rows[0] == ["procs", "eff"]
    assert rows[1] == ["56", "0.994"]
    assert len(rows) == 3


def test_to_json_roundtrip():
    doc = json.loads(to_json(sample_table()))
    assert doc["title"].startswith("Figure 9")
    assert doc["columns"] == ["procs", "eff"]
    assert doc["rows"] == [[56, 0.994], [448, 0.999]]
    assert doc["notes"] == ["anchor"]


def test_export_writes_files(tmp_path):
    written = export(sample_table(), tmp_path)
    assert len(written) == 2
    suffixes = {p.suffix for p in written}
    assert suffixes == {".csv", ".json"}
    for path in written:
        assert path.exists()
        assert path.stat().st_size > 0


def test_export_many(tmp_path):
    t1 = sample_table()
    t2 = ResultTable("Other table", ["x"])
    t2.add(1)
    written = export([t1, t2], tmp_path)
    assert len(written) == 4
    names = {p.stem for p in written}
    assert len(names) == 2
