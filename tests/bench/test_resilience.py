"""Determinism of the resilience experiment (small parameters)."""

from repro.bench.resilience import resilience
from repro.units import MiB

SMALL = dict(
    mtbfs=(20.0, 60.0),
    systems=("nvmecr", "lustre"),
    total_compute=40.0,
    nbytes=MiB(8),
    nprocs=1,
    seed=13,
)


def test_same_seed_produces_identical_tables():
    a = resilience(**SMALL)
    b = resilience(**SMALL)
    assert a.rows == b.rows


def test_systems_share_the_fault_sequence_under_one_seed():
    # CRN: with a common seed, both systems face identical strike times
    # per MTBF, so failure counts can only differ through exposure (wall
    # time), never through a different random draw.
    collected = []
    resilience(collect=collected, **SMALL)
    assert len(collected) == 4  # 2 mtbfs x 2 systems
    by_cell = {(r.extra["mtbf_s"], r.system): r for r in collected}
    for mtbf in SMALL["mtbfs"]:
        cells = [v for (m, _), v in by_cell.items() if m == mtbf]
        assert len(cells) == 2
        # Every cell carries a timeline summary and a Daly interval.
        for cell in cells:
            assert cell.extra["interval_s"] > 0
            assert cell.extra["faults_injected"] == cell.extra.get(
                "faults[node-crash]", cell.extra["faults_injected"]
            )


def test_progress_degrades_as_mtbf_shrinks():
    table = resilience(**SMALL)
    progress_col = table.columns.index("progress")
    mtbf_col = table.columns.index("mtbf_s")
    by_system = {}
    for row in table.rows:
        by_system.setdefault(row[0], {})[row[mtbf_col]] = row[progress_col]
    for system, curve in by_system.items():
        assert curve[20.0] <= curve[60.0]
