"""Tests for the tiers experiment (placement policies under strikes)."""

import pytest

from repro.bench.tiers import _dead_levels, tiers


def _rows(table):
    return [dict(zip(table.columns, row)) for row in table.rows]


def test_dead_levels_by_severity():
    residuals = (0.67, 0.67, 0.33, 0.0)
    assert _dead_levels(residuals, 0) == [1, 2]   # domain
    assert _dead_levels(residuals, 1) == []       # node restart
    assert _dead_levels(residuals, 2) == [1, 2, 3]  # cascade


@pytest.mark.slow
def test_cost_model_beats_fixed_k_under_strikes():
    """The acceptance gate: in at least one fault regime the cost model
    wins the lost-work-vs-overhead trade (lower score_s) against the
    fixed-k rule on the same hierarchy under the same strikes."""
    table = tiers(steps=12, mtbfs=(8.0, 60.0))
    rows = _rows(table)
    by = {(r["system"], r["policy"], r["mtbf_s"]): r for r in rows}
    assert len(rows) == 6  # 3 variants x 2 regimes

    wins = [
        mtbf for mtbf in (8.0, 60.0)
        if by[("nvmecr-tiered", "cost-model", mtbf)]["score_s"]
        < by[("nvmecr-tiered", "fixed-k", mtbf)]["score_s"]
    ]
    assert wins, "cost model should win at least one fault regime"

    # The harsh regime must actually strike, and the cost model reacts
    # by checkpointing durably more often than the calm regime.
    harsh = by[("nvmecr-tiered", "cost-model", 8.0)]
    calm = by[("nvmecr-tiered", "cost-model", 60.0)]
    assert harsh["faults"] > 0
    assert harsh["durable_frac"] >= calm["durable_frac"]


@pytest.mark.slow
def test_fixed_k_rows_match_across_hierarchies():
    """Both fixed-k rows follow the same k: identical durable fraction,
    and the classic two-level system keeps its Table II behavior."""
    table = tiers(steps=10, mtbfs=(60.0,), pfs_interval=5)
    rows = _rows(table)
    fixed = [r for r in rows if r["policy"] == "fixed-k"]
    assert {r["durable_frac"] for r in fixed} == {0.2}
