"""Bench trend store: record/check round trips, direction taxonomy,
provenance-gated comparability, and the regression gate itself.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import ResultTable
from repro.bench.trend import (
    DEFAULT_TOLERANCE,
    EXPERIMENT_DIRECTIONS,
    TrendStore,
    check,
    classify_column,
    config_digest,
    load_bench,
    provenance,
)


def _bench(name="fig7a", rows=None, meta=None):
    return {
        "name": name,
        "columns": ["block", "time_s", "gibps"],
        "rows": rows or [[32768, 1.0, 4.0], [65536, 0.5, 8.0]],
        "meta": {"seed": 2, "shards": 1} if meta is None else meta,
    }


def _store(tmp_path):
    return TrendStore(tmp_path / "baselines")


# ---------------------------------------------------------------------------
# column taxonomy
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("column,expected", [
    ("time_s", "lower"),
    ("p99_ms", "lower"),
    ("avail_gap_ms", "lower"),      # a gap, not an availability
    ("mean_rec_ms", "lower"),
    ("lost_ops", "lower"),
    ("gibps", "higher"),
    ("ops_acked", "higher"),
    ("eff_frac", "higher"),
    ("seed", "identity"),
    ("shards", "identity"),
    ("block", "identity"),
    ("system", "identity"),
])
def test_classify_column_defaults(column, expected):
    assert classify_column(column) == expected


def test_classify_column_overrides_win():
    assert classify_column("time_s", {"time_*": "skip"}) == "skip"
    assert classify_column("faults_per_s",
                           EXPERIMENT_DIRECTIONS["failover"]) == "identity"
    assert classify_column("crail_vs_nvmecr",
                           EXPERIMENT_DIRECTIONS["fig8a"]) == "skip"


def test_config_digest_is_stable_and_order_free():
    a = config_digest({"seed": 2, "block": 32768})
    b = config_digest({"block": 32768, "seed": 2})
    assert a == b and len(a) == 16
    assert config_digest({"seed": 3, "block": 32768}) != a


# ---------------------------------------------------------------------------
# store round trip
# ---------------------------------------------------------------------------

def test_record_and_baseline_round_trip(tmp_path):
    store = _store(tmp_path)
    path = store.record(_bench())
    assert path.exists()
    history = store.history("fig7a")
    assert len(history) == 1
    assert history[0]["sequence"] == 1
    baseline, why = store.baseline_for(_bench())
    assert why is None
    assert baseline["rows"] == _bench()["rows"]


def test_record_keeps_bounded_history(tmp_path):
    store = TrendStore(tmp_path / "baselines", keep=3)
    for i in range(6):
        store.record(_bench(rows=[[32768, 1.0 + i, 4.0]]))
    history = store.history("fig7a")
    assert len(history) == 3
    # Sequence numbers keep climbing across the trim.
    assert [e["sequence"] for e in history] == [4, 5, 6]


def test_provenance_mismatch_skips_back_through_history(tmp_path):
    store = _store(tmp_path)
    store.record(_bench(meta={"seed": 2, "shards": 1}))
    store.record(_bench(meta={"seed": 3, "shards": 1},
                        rows=[[32768, 9.0, 0.4]]))
    # seed-2 run must match the older seed-2 entry, not the newest.
    baseline, why = store.baseline_for(_bench(meta={"seed": 2, "shards": 1}))
    assert why is None
    assert baseline["rows"][0][1] == 1.0


def test_provenance_missing_key_is_not_a_mismatch(tmp_path):
    store = _store(tmp_path)
    store.record(_bench(meta={}))  # old-style entry, no provenance
    baseline, why = store.baseline_for(
        _bench(meta={"seed": 2, "shards": 4, "config_digest": "abc"}))
    assert why is None and baseline is not None


# ---------------------------------------------------------------------------
# the gate
# ---------------------------------------------------------------------------

def test_unchanged_run_passes(tmp_path):
    store = _store(tmp_path)
    store.record(_bench())
    report = check(_bench(), store=store)
    assert report.ok
    assert report.regressions == []
    assert len(report.deltas) == 4  # 2 rows x (time_s, gibps)


def test_regression_beyond_tolerance_fails(tmp_path):
    store = _store(tmp_path)
    store.record(_bench())
    slower = _bench(rows=[[32768, 1.25, 4.0], [65536, 0.5, 8.0]])
    report = check(slower, store=store)
    assert not report.ok
    [delta] = report.regressions
    assert delta.column == "time_s"
    assert delta.delta_frac == pytest.approx(0.25)
    assert delta.tolerance == DEFAULT_TOLERANCE
    assert "REGRESSION" in report.render()


def test_throughput_drop_fails_makespan_drop_does_not(tmp_path):
    store = _store(tmp_path)
    store.record(_bench())
    # Faster AND higher throughput: both are improvements.
    better = _bench(rows=[[32768, 0.7, 6.0], [65536, 0.5, 8.0]])
    report = check(better, store=store)
    assert report.ok
    assert len(report.improvements) == 2
    # Throughput collapse alone trips the gate (higher-is-better).
    worse = _bench(rows=[[32768, 1.0, 2.0], [65536, 0.5, 8.0]])
    assert not check(worse, store=store).ok


def test_within_tolerance_drift_passes(tmp_path):
    store = _store(tmp_path)
    store.record(_bench())
    drift = _bench(rows=[[32768, 1.05, 3.9], [65536, 0.52, 7.8]])
    report = check(drift, store=store)
    assert report.ok and report.regressions == []


def test_custom_tolerance_tightens_the_gate(tmp_path):
    store = _store(tmp_path)
    store.record(_bench())
    drift = _bench(rows=[[32768, 1.05, 4.0], [65536, 0.5, 8.0]])
    assert check(drift, store=store).ok
    report = check(drift, store=store, tolerances={"*": 0.01})
    assert not report.ok


def test_no_baseline_passes_unless_required(tmp_path):
    store = _store(tmp_path)
    report = check(_bench(), store=store)
    assert report.ok
    assert any("no comparable baseline" in n for n in report.notes)
    assert not check(_bench(), store=store, require_baseline=True).ok


def test_provenance_mismatch_everywhere_means_no_comparison(tmp_path):
    store = _store(tmp_path)
    store.record(_bench(meta={"seed": 2, "shards": 1}))
    run = _bench(meta={"seed": 7, "shards": 1},
                 rows=[[32768, 99.0, 0.01], [65536, 0.5, 8.0]])
    report = check(run, store=store)
    assert report.ok  # wildly different numbers, but not comparable
    assert not check(run, store=store, require_baseline=True).ok


def test_new_and_missing_rows_are_noted_not_gated(tmp_path):
    store = _store(tmp_path)
    store.record(_bench())
    run = _bench(rows=[[32768, 1.0, 4.0], [131072, 0.25, 16.0]])
    report = check(run, store=store)
    assert report.ok
    assert any("new (no baseline)" in n for n in report.notes)
    assert any("in baseline but not" in n for n in report.notes)


def test_skip_columns_stay_out_of_row_key_and_gate(tmp_path):
    # fig8a's derived ratio moves when crail regresses; it must neither
    # split the row key (which would hide the regression as a "new row")
    # nor be gated itself.
    store = _store(tmp_path)
    bench = {
        "name": "fig8a",
        "columns": ["dumps_gib", "crail", "local", "crail_vs_nvmecr"],
        "rows": [[1.0, 2.0, 1.0, 2.0]],
        "meta": {"seed": 2},
    }
    store.record(bench)
    regressed = dict(bench, rows=[[1.0, 2.5, 1.0, 2.5]])
    report = check(regressed, store=store)
    assert not report.ok
    assert [d.column for d in report.regressions] == ["crail"]


# ---------------------------------------------------------------------------
# provenance + load helpers
# ---------------------------------------------------------------------------

def test_provenance_reads_signature_and_kwargs():
    def fake_experiment(blocks=(1, 2), nprocs=8, seed=2, executor=None):
        raise AssertionError("never called")

    table = ResultTable("t", ["system", "x"])
    table.add("nvmecr", 1)
    table.add("crail", 2)
    meta = provenance("fig8a", fn=fake_experiment,
                      kwargs={"nprocs": 4}, table=table)
    assert meta["experiment"] == "fig8a"
    assert meta["seed"] == 2
    assert meta["systems"] == ["crail", "nvmecr"]
    digest = meta["config_digest"]
    assert len(digest) == 16
    # The digest shifts when the effective parameters do.
    meta2 = provenance("fig8a", fn=fake_experiment,
                       kwargs={"nprocs": 2}, table=table)
    assert meta2["config_digest"] != digest


def test_load_bench_validates_shape(tmp_path):
    good = tmp_path / "BENCH_x.json"
    good.write_text(json.dumps(_bench()))
    assert load_bench(good)["name"] == "fig7a"
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text(json.dumps({"name": "x"}))
    with pytest.raises((KeyError, ValueError)):
        load_bench(bad)
