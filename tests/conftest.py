"""Shared fixtures: a single-SSD microfs rig used across core tests."""

import numpy as np
import pytest

from repro.core.config import RuntimeConfig
from repro.core.data_plane import DataPlane
from repro.core.microfs.fs import MicroFS
from repro.fabric.transport import LocalPCIeTransport
from repro.nvme import SSD, SSDSpec, intel_p4800x
from repro.sim import Environment
from repro.units import GiB, MiB


def deterministic_spec(**overrides) -> SSDSpec:
    """P4800X with arbitration jitter off so unit tests are exact."""
    base = intel_p4800x()
    fields = dict(
        model=base.model,
        capacity_bytes=base.capacity_bytes,
        write_bandwidth=base.write_bandwidth,
        read_bandwidth=base.read_bandwidth,
        per_command_cost=base.per_command_cost,
        flush_cost=base.flush_cost,
        lba_size=base.lba_size,
        max_hw_queues=base.max_hw_queues,
        max_namespaces=base.max_namespaces,
        ram_buffer_bytes=base.ram_buffer_bytes,
        ram_write_bandwidth=base.ram_write_bandwidth,
        arbitration_beta=0.0,
    )
    fields.update(overrides)
    return SSDSpec(**fields)


class MicroFSRig:
    """One env + SSD + namespace + a MicroFS on a partition."""

    def __init__(self, config=None, partition_bytes=GiB(4), nranks=1, rank=0):
        self.env = Environment()
        self.config = config or RuntimeConfig(
            log_region_bytes=MiB(1), state_region_bytes=MiB(16)
        )
        self.ssd = SSD(
            self.env, deterministic_spec(), "ssd0", rng=np.random.default_rng(0)
        )
        self.namespace = self.ssd.create_namespace(partition_bytes * nranks, owner_job="test")
        self.partition = self.namespace.partition(
            rank, nranks, self.config.effective_block_bytes
        )
        self.transport = LocalPCIeTransport(self.env, self.ssd)
        self.data_plane = DataPlane(
            self.env, self.transport, self.namespace.nsid, self.config
        )
        self.fs = MicroFS(
            self.env, self.config, self.data_plane, self.partition,
            instance_name="test-rig",
        )

    def run(self, gen):
        """Drive a sub-generator to completion, returning its value."""
        return self.env.run_until_complete(self.env.process(gen))


@pytest.fixture
def rig():
    return MicroFSRig()
