"""Property: consensus is deterministic — seed + fault schedule fix the
full election/commit/term trace, bit for bit."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus import RaftGroup
from repro.sim.engine import Environment
from repro.sim.rng import RngHub
from repro.units import ms

MEMBERS = ["cn0", "cn1", "cn2"]

# A fault step is (kind, at_offset_ms): the scripted client applies it
# mid-workload.  Offsets are integers so schedules compare exactly.
fault_steps = st.lists(
    st.tuples(
        st.sampled_from(["kill-leader", "partition-leader", "none"]),
        st.integers(min_value=10, max_value=60),
    ),
    min_size=0,
    max_size=2,
)


def run_once(seed, schedule, n_ops=6):
    """One full consensus run; returns the observable outcome tuple."""
    env = Environment()
    group = RaftGroup(env, MEMBERS, RngHub(seed))
    group.start()

    def body():
        yield from group.wait_leader(timeout=2.0)
        pending = list(schedule)
        for i in range(n_ops):
            # One outstanding fault at a time: strike, commit through it,
            # repair.  A lone fault always leaves a quorum side, so the
            # untimed propose below cannot block forever.
            repair = None
            if pending:
                kind, offset = pending.pop(0)
                yield env.timeout(ms(offset))
                if kind == "kill-leader":
                    victim = group.kill_leader()
                    if victim is not None:
                        repair = ("revive", victim)
                elif kind == "partition-leader":
                    lead = group.leader()
                    if lead is not None:
                        group.partition([lead])
                        repair = ("heal", None)
            yield from group.propose(("meta.set", f"/k{i}", i))
            if repair is not None:
                action, victim = repair
                group.revive(victim) if action == "revive" else group.heal()
        yield env.timeout(ms(250))

    proc = env.process(body())
    env.run_until_complete(proc)
    group.stop()
    env.run()
    return (
        group.traces(),
        group.digests(),
        group.commit_indexes(),
        {m: group.nodes[m].term for m in MEMBERS},
    )


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       schedule=fault_steps)
def test_same_seed_and_schedule_reproduce_the_trace(seed, schedule):
    first = run_once(seed, schedule)
    second = run_once(seed, schedule)
    assert first == second


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       schedule=fault_steps)
def test_replicas_always_converge(seed, schedule):
    """Whatever the schedule throws, healed replicas end digest-equal
    with every acked command applied."""
    traces, digests, commits, _terms = run_once(seed, schedule)
    assert len(set(digests.values())) == 1
    assert all(ci >= 6 for ci in commits.values())
    # The trace carries at least the initial election and the commits.
    kinds = {t[0] for trace in traces.values() for t in trace}
    assert "leader" in kinds and "commit" in kinds


def test_different_seeds_draw_different_timelines():
    """Not a tautology: the timeout jitter is the only randomness, and a
    different seed must actually move it."""
    a = run_once(1, [])
    b = run_once(2, [])
    assert a[0] != b[0]  # traces differ (timings, possibly the leader)
    assert a[1] == b[1]  # ... but the replicated STATE is seed-free
