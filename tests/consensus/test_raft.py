"""Raft behaviour: elections, replication, failover, snapshots, witnesses."""

import pytest

from repro.consensus import RaftGroup, Role
from repro.errors import ConsensusError, NotLeader
from repro.sim.engine import Environment
from repro.sim.rng import RngHub
from repro.units import ms

MEMBERS = ["cn0", "cn1", "cn2"]


def make_group(seed=7, members=MEMBERS, **kwargs):
    env = Environment()
    group = RaftGroup(env, members, RngHub(seed), **kwargs)
    group.start()
    return env, group


def drive(env, group, body):
    """Run a client generator to completion, then drain the queue."""
    proc = env.process(body())
    env.run_until_complete(proc)
    group.stop()
    env.run()
    return proc.value


def test_single_leader_elected():
    env, group = make_group()

    def body():
        lead = yield from group.wait_leader(timeout=1.0)
        assert group.nodes[lead].role is Role.LEADER
        followers = [m for m in MEMBERS if m != lead]
        assert all(
            group.nodes[m].role is Role.FOLLOWER for m in followers
        )
        # Followers learned the leader from its heartbeats.
        yield env.timeout(ms(30))
        assert all(
            group.nodes[m].leader_hint == lead for m in followers
        )

    drive(env, group, body)


def test_commit_replicates_to_all():
    env, group = make_group()

    def body():
        yield from group.wait_leader(timeout=1.0)
        for i in range(5):
            index, result = yield from group.propose(("meta.set", f"/k{i}", i))
            assert result == i
        yield env.timeout(ms(50))

    drive(env, group, body)
    assert len(set(group.digests().values())) == 1
    assert all(ci >= 5 for ci in group.commit_indexes().values())


def test_propose_on_follower_raises_not_leader():
    env, group = make_group()

    def body():
        lead = yield from group.wait_leader(timeout=1.0)
        yield env.timeout(ms(30))  # let heartbeats spread the hint
        follower = next(m for m in MEMBERS if m != lead)
        with pytest.raises(NotLeader) as exc:
            group.nodes[follower].propose(("noop",))
        assert exc.value.leader_hint == lead

    drive(env, group, body)


def test_leader_kill_reelects_and_keeps_data():
    env, group = make_group()

    def body():
        yield from group.wait_leader(timeout=1.0)
        for i in range(10):
            yield from group.propose(("meta.set", f"/k{i}", i))
        killed = group.kill_leader()
        assert killed is not None
        lead = yield from group.wait_leader(timeout=1.0)
        assert lead != killed
        for i in range(10, 20):
            yield from group.propose(("meta.set", f"/k{i}", i))
        group.revive(killed)
        yield env.timeout(ms(200))  # revived member catches up
        return killed

    killed = drive(env, group, body)
    digests = group.digests()
    assert len(set(digests.values())) == 1
    assert digests[killed] == digests[group.leader()]


def test_minority_partition_keeps_committing():
    env, group = make_group()

    def body():
        lead = yield from group.wait_leader(timeout=1.0)
        yield from group.propose(("meta.set", "/pre", 1))
        group.partition([lead])  # cut the leader off from the majority
        for i in range(5):
            yield from group.propose(("meta.set", f"/k{i}", i))
        new_lead = group.leader()
        assert new_lead != lead
        group.heal()
        yield env.timeout(ms(200))  # deposed leader rejoins and catches up

    drive(env, group, body)
    assert len(set(group.digests().values())) == 1


def test_isolated_majority_side_elects_and_commits():
    env, group = make_group()

    def body():
        lead = yield from group.wait_leader(timeout=1.0)
        followers = [m for m in MEMBERS if m != lead]
        # Cutting both followers off leaves THEM the quorum side: they
        # re-elect among themselves and keep committing.
        group.partition(followers)
        index, _result = yield from group.propose(("meta.set", "/k", 1))
        assert index >= 1
        assert group.leader() in followers
        group.heal()
        yield env.timeout(ms(200))

    drive(env, group, body)
    assert len(set(group.digests().values())) == 1


def test_no_quorum_blocks_commit_until_repair():
    env, group = make_group()

    def body():
        lead = yield from group.wait_leader(timeout=1.0)
        followers = [m for m in MEMBERS if m != lead]
        group.partition([lead])  # leader alone on the minority side
        group.kill(followers[0])  # majority side down to one live member
        with pytest.raises(ConsensusError):
            yield from group.propose(("meta.set", "/k", 1), timeout=ms(150))
        group.heal()
        group.revive(followers[0])
        lead = yield from group.wait_leader(timeout=1.0)
        yield from group.propose(("meta.set", "/k", 2))
        yield env.timeout(ms(200))

    drive(env, group, body)
    assert len(set(group.digests().values())) == 1


def test_snapshot_compaction_and_laggard_catch_up():
    env, group = make_group(snapshot_threshold=8)

    def body():
        yield from group.wait_leader(timeout=1.0)
        lagger = next(m for m in MEMBERS if m != group.leader())
        group.kill(lagger)
        # Enough commits that the leader compacts past the laggard's log.
        for i in range(30):
            yield from group.propose(("meta.set", f"/k{i}", i))
        assert group.nodes[group.leader()].snapshots_taken >= 1
        group.revive(lagger)
        yield env.timeout(ms(300))
        return lagger

    lagger = drive(env, group, body)
    assert len(set(group.digests().values())) == 1
    # The laggard was caught up via InstallSnapshot, not log replay alone.
    assert group.nodes[lagger].snap_last_index > 0


def test_witness_votes_but_holds_no_state():
    env, group = make_group(members=["cn0", "cn1", "w0"], witnesses=["w0"])

    def body():
        yield from group.wait_leader(timeout=1.0)
        for i in range(5):
            yield from group.propose(("meta.set", f"/k{i}", i))
        yield env.timeout(ms(50))

    drive(env, group, body)
    assert group.full_members() == ["cn0", "cn1"]
    digests = group.digests()
    assert "w0" not in digests
    assert len(set(digests.values())) == 1
    # The witness replicated and acknowledged the log all the same.
    assert group.nodes["w0"].machine.applied_count >= 5


def test_single_member_group_self_commits():
    env, group = make_group(members=["solo"])

    def body():
        yield from group.wait_leader(timeout=1.0)
        index, result = yield from group.propose(("meta.set", "/k", 9))
        assert result == 9

    drive(env, group, body)
    assert group.nodes["solo"].machine.get("/k") == 9


def test_crashed_member_keeps_persistent_log():
    env, group = make_group()

    def body():
        yield from group.wait_leader(timeout=1.0)
        yield from group.propose(("meta.set", "/k", 1))
        yield env.timeout(ms(50))
        victim = next(m for m in MEMBERS if m != group.leader())
        before = group.nodes[victim].last_index()
        group.kill(victim)
        assert group.nodes[victim].last_index() == before  # disk survives
        group.revive(victim)
        yield env.timeout(ms(100))

    drive(env, group, body)
    assert len(set(group.digests().values())) == 1
