"""Unit tests for the replicated state machines."""

import pytest

from repro.consensus import FullStateMachine, WitnessStateMachine
from repro.errors import SimulationError


def test_apply_meta_and_grants():
    sm = FullStateMachine()
    assert sm.apply(1, ("meta.set", "/a", (1, 2))) == (1, 2)
    assert sm.apply(2, ("grant.add", "job", (("stor00", 1, 4096),))) == (
        ("stor00", 1, 4096),
    )
    assert sm.get("/a") == (1, 2)
    assert sm.grant_of("job") == (("stor00", 1, 4096),)
    assert sm.apply(3, ("meta.del", "/a")) == (1, 2)
    assert sm.get("/a") is None
    assert sm.apply(4, ("grant.del", "job")) == (("stor00", 1, 4096),)
    assert sm.grant_of("job") is None
    assert sm.applied_index == 4


def test_noop_and_keys_sorted():
    sm = FullStateMachine()
    sm.apply(1, ("noop",))
    sm.apply(2, ("meta.set", "/b", 2))
    sm.apply(3, ("meta.set", "/a", 1))
    assert sm.keys() == ["/a", "/b"]


def test_replay_rejected():
    sm = FullStateMachine()
    sm.apply(1, ("meta.set", "/a", 1))
    with pytest.raises(SimulationError, match="replay"):
        sm.apply(1, ("meta.set", "/a", 2))


def test_unknown_command_rejected():
    with pytest.raises(SimulationError, match="unknown replicated"):
        FullStateMachine().apply(1, ("meta.explode", "/a"))


def test_snapshot_restore_round_trip():
    sm = FullStateMachine()
    sm.apply(1, ("meta.set", "/a", 1))
    sm.apply(2, ("grant.add", "j", (1,)))
    image = sm.snapshot()
    other = FullStateMachine()
    other.restore(2, image)
    assert other.applied_index == 2
    assert other.digest() == sm.digest()
    # The image is a copy: mutating the original does not leak into it.
    sm.apply(3, ("meta.set", "/a", 99))
    assert other.get("/a") == 1


def test_digest_is_order_independent():
    a, b = FullStateMachine(), FullStateMachine()
    a.apply(1, ("meta.set", "/x", 1))
    a.apply(2, ("meta.set", "/y", 2))
    b.apply(1, ("meta.set", "/y", 2))
    b.apply(2, ("meta.set", "/x", 1))
    assert a.digest() == b.digest()


def test_witness_materialises_nothing():
    w = WitnessStateMachine()
    assert w.witness is True
    assert w.apply(1, ("meta.set", "/a", 1)) is None
    assert w.apply(2, ("grant.add", "j", (1,))) is None
    assert w.applied_count == 2
    assert w.snapshot() is None
    with pytest.raises(SimulationError, match="replay"):
        w.apply(2, ("noop",))
    w.restore(10, None)
    assert w.applied_index == 10
