"""ReplicatedMetadataStore: the MetadataStore interface over Raft."""

import pytest

from repro.consensus import RaftGroup, ReplicatedMetadataStore
from repro.core.control_plane import LocalMetadataStore, make_metadata_store
from repro.errors import ConsensusError
from repro.sim.engine import Environment
from repro.sim.rng import RngHub
from repro.units import ms

MEMBERS = ["cn0", "cn1", "cn2"]


def make_store(seed=11, members=MEMBERS):
    env = Environment()
    group = RaftGroup(env, members, RngHub(seed))
    group.start()
    return env, group, ReplicatedMetadataStore(env, group)


def drive(env, group, body):
    proc = env.process(body())
    env.run_until_complete(proc)
    group.stop()
    env.run()
    return proc.value


def test_mode_tag():
    env, group, store = make_store()
    assert store.mode == "raft"
    group.stop()
    env.run()


def test_set_get_delete_round_trip():
    env, group, store = make_store()

    def body():
        yield from group.wait_leader(timeout=1.0)
        assert (yield from store.set("/a", (1, 4096))) == (1, 4096)
        assert store.get("/a") == (1, 4096)
        assert (yield from store.delete("/a")) == (1, 4096)
        assert store.get("/a") is None

    drive(env, group, body)


def test_grants_round_trip():
    env, group, store = make_store()

    def body():
        yield from group.wait_leader(timeout=1.0)
        grant = (("stor00", 1, 4096),)
        yield from store.add_grant("job0", grant)
        assert store.grant_of("job0") == grant
        yield from store.revoke_grant("job0")
        assert store.grant_of("job0") is None

    drive(env, group, body)


def test_digest_parity_with_local_store():
    """The same mutation sequence yields the same digest in both modes —
    local and replicated runs are directly comparable."""
    env, group, store = make_store()
    local = LocalMetadataStore(Environment())

    ops = [
        ("set", "/ckpt/r0", (7, 1024)),
        ("set", "/ckpt/r1", (8, 2048)),
        ("add_grant", "job0", (("stor00", 1, 64),)),
        ("set", "/ckpt/r0", (7, 4096)),  # idempotent upsert, new value
        ("delete", "/ckpt/r1", None),
    ]

    def apply_all(target):
        for op, key, value in ops:
            if op == "set":
                yield from target.set(key, value)
            elif op == "add_grant":
                yield from target.add_grant(key, value)
            else:
                yield from target.delete(key)

    def body():
        yield from group.wait_leader(timeout=1.0)
        yield from apply_all(store)
        yield env.timeout(ms(50))

    drive(env, group, body)
    local_env = local.env
    local_proc = local_env.process(apply_all(local))
    local_env.run_until_complete(local_proc)

    assert store.digest() == local.digest()
    assert store.keys() == local.keys() == ["/ckpt/r0"]
    assert store.get("/ckpt/r0") == local.get("/ckpt/r0") == (7, 4096)


def test_mutations_survive_leader_failover():
    env, group, store = make_store()

    def body():
        yield from group.wait_leader(timeout=1.0)
        yield from store.set("/pre", 1)
        killed = group.kill_leader()
        # The very next mutation rides the client retry loop through the
        # election — no caller-visible error.
        yield from store.set("/post", 2)
        group.revive(killed)
        yield env.timeout(ms(200))

    drive(env, group, body)
    assert store.get("/pre") == 1
    assert store.get("/post") == 2
    assert len(set(group.digests().values())) == 1
    assert store.ops_committed == 2


def test_reads_fall_back_to_most_advanced_member():
    env, group, store = make_store()

    def body():
        lead = yield from group.wait_leader(timeout=1.0)
        yield from store.set("/a", 1)
        yield env.timeout(ms(50))  # commit reaches all replicas
        group.kill(lead)
        # Leaderless instant: reads serve from the freshest live member.
        assert store.get("/a") == 1

    drive(env, group, body)


def test_read_with_no_live_member_raises():
    env, group, store = make_store()

    def body():
        yield from group.wait_leader(timeout=1.0)
        for name in MEMBERS:
            group.kill(name)
        with pytest.raises(ConsensusError):
            store.get("/a")

    drive(env, group, body)


def test_factory_builds_replicated_store():
    env = Environment()
    group = RaftGroup(env, MEMBERS, RngHub(3))
    store = make_metadata_store(env, "raft", group)
    assert isinstance(store, ReplicatedMetadataStore)
    assert store.group is group
