"""Tests for admission control, retry budgets, and deadlines."""

import numpy as np
import pytest

from repro.core.config import RuntimeConfig
from repro.core.data_plane import DataPlane
from repro.errors import DeadlineExceeded, FabricError, InvalidArgument
from repro.fabric import (
    FabricTransport,
    LocalPCIeTransport,
    NVMfInitiator,
    NVMfTarget,
    RdmaFabric,
    edr_infiniband,
)
from repro.io import IORequest, QoSClass
from repro.nvme import SSD, Payload
from repro.sim import Environment
from repro.topology import NetworkTopology, paper_testbed
from repro.units import GiB, KiB, MiB

from tests.conftest import deterministic_spec


def _local_plane(**config_overrides):
    env = Environment()
    ssd = SSD(env, deterministic_spec(), "s0", rng=np.random.default_rng(0))
    ns = ssd.create_namespace(GiB(4))
    config = RuntimeConfig(max_batch_bytes=MiB(8), **config_overrides)
    dp = DataPlane(env, LocalPCIeTransport(env, ssd), ns.nsid, config)
    return env, ssd, dp


def _write_req(offset, nbytes, **overrides):
    return IORequest.write_runs(
        1, [(offset, Payload.synthetic(f"w{offset}", nbytes))],
        command_size=KiB(32), chunk_bytes=MiB(8), **overrides)


def test_window_bounds_inflight_bytes():
    env, ssd, dp = _local_plane(inflight_window_bytes=MiB(1))
    completions = []

    def issue(offset):
        done = yield from dp.submit(_write_req(offset, MiB(1)))
        completions.append(done)

    for i in range(4):
        env.process(issue(i * MiB(1)))
    env.run()
    assert len(completions) == 4
    # First request admitted instantly; the rest waited for the window.
    waits = sorted(c.admission_s for c in completions)
    assert waits[0] == 0.0
    assert all(w > 0 for w in waits[1:])
    assert dp._inflight_bytes == 0


def test_window_caps_concurrent_transport_bytes():
    env, ssd, dp = _local_plane(inflight_window_bytes=MiB(2))
    seen = []
    orig = dp.transport.write

    def spy(*args, **kwargs):
        seen.append(dp._inflight_bytes)
        return orig(*args, **kwargs)

    dp.transport.write = spy

    def issue(offset):
        yield from dp.submit(_write_req(offset, MiB(1)))

    for i in range(6):
        env.process(issue(i * MiB(1)))
    env.run()
    # Every transport submission happened inside the window — and the
    # window was actually exercised, not trivially single-file.
    assert max(seen) == MiB(2)
    assert all(b <= MiB(2) for b in seen)


def test_oversized_request_admitted_alone():
    # 4 MiB request through a 1 MiB window: admitted once the window
    # drains, never deadlocked.
    env, ssd, dp = _local_plane(inflight_window_bytes=MiB(1))
    done = env.run_until_complete(env.process(dp.submit(_write_req(0, MiB(4)))))
    assert done.ok
    assert ssd.counters.get("bytes_written") == MiB(4)
    assert dp._inflight_bytes == 0


def test_window_validation():
    with pytest.raises(InvalidArgument):
        RuntimeConfig(inflight_window_bytes=0)


def _fabric_plane():
    env = Environment()
    topo = NetworkTopology(paper_testbed())
    fabric = RdmaFabric(topo, edr_infiniband(), env=env)
    ssd = SSD(env, deterministic_spec(), "ssd-stor00",
              rng=np.random.default_rng(0))
    ns = ssd.create_namespace(GiB(4))
    target = NVMfTarget(env, "stor00", ssd)
    initiator = NVMfInitiator(env, "comp00", fabric)
    session = initiator.connect(target)
    transport = FabricTransport(session, initiator=initiator, target=target)
    dp = DataPlane(env, transport, ns.nsid, RuntimeConfig(max_batch_bytes=MiB(8)))
    return env, ssd, target, dp


def test_zero_retry_budget_propagates_fabric_error():
    env, ssd, target, dp = _fabric_plane()
    target.kill()
    with pytest.raises(FabricError):
        env.run_until_complete(env.process(dp.submit(_write_req(0, KiB(64)))))
    assert dp.counters.get("io_retries") == 0


def test_retry_reconnects_after_target_revival():
    env, ssd, target, dp = _fabric_plane()
    target.kill()

    def revive():
        yield env.timeout(100e-6)
        target.revive()

    env.process(revive())
    req = _write_req(0, KiB(64), retry_budget=5, retry_backoff=80e-6)
    done = env.run_until_complete(env.process(dp.submit(req)))
    assert done.ok
    assert done.retries_used >= 1
    assert dp.counters.get("io_retries") == done.retries_used
    assert ssd.counters.get("bytes_written") == KiB(64)


def test_retry_budget_exhausted_reraises():
    env, ssd, target, dp = _fabric_plane()
    target.kill()
    req = _write_req(0, KiB(64), retry_budget=2, retry_backoff=10e-6)
    with pytest.raises(FabricError):
        env.run_until_complete(env.process(dp.submit(req)))
    assert dp.counters.get("io_retries") == 2


def test_deadline_bounds_retries():
    env, ssd, target, dp = _fabric_plane()
    target.kill()
    # Generous budget, tight deadline: the deadline fires first.
    req = _write_req(0, KiB(64), retry_budget=50, retry_backoff=100e-6,
                     deadline=250e-6)
    with pytest.raises(DeadlineExceeded):
        env.run_until_complete(env.process(dp.submit(req)))
    assert env.now <= 1e-3
    assert dp.counters.get("io_retries") < 50


def test_backoff_doubles_per_attempt():
    env, ssd, target, dp = _fabric_plane()
    target.kill()
    req = _write_req(0, KiB(64), retry_budget=3, retry_backoff=100e-6)
    with pytest.raises(FabricError):
        env.run_until_complete(env.process(dp.submit(req)))
    # 100 + 200 + 400 us of backoff (plus negligible software charge).
    assert env.now == pytest.approx(700e-6, rel=0.2)


def test_completion_records_per_class_latency():
    env, ssd, dp = _local_plane()
    req = _write_req(0, MiB(1), qos=QoSClass.JOURNAL)
    done = env.run_until_complete(env.process(dp.submit(req)))
    assert done.qos is QoSClass.JOURNAL
    assert dp.class_latencies[QoSClass.JOURNAL] == [done.latency_s]
    assert done.latency_s == pytest.approx(
        done.software_s + done.admission_s + done.transfer_s + done.flush_s)
