"""Edge-case tests for the storage balancer."""

import pytest

from repro.apps import Deployment
from repro.errors import AllocationError
from repro.scheduler import JobSpec
from repro.topology import ClusterSpec, Node, NodeKind, Rack
from repro.units import GiB


def test_allocation_error_when_not_enough_partner_devices():
    dep = Deployment(seed=1)
    job, _plan = dep.submit("a", nprocs=2, devices=1, bytes_per_device=GiB(1))
    job2 = dep.scheduler.submit(JobSpec("b", "u", nprocs=2))
    with pytest.raises(AllocationError):
        dep.balancer.allocate(job2, devices=9, bytes_per_device=GiB(1))


def test_unallocated_job_rejected():
    dep = Deployment(seed=2)
    # Fill the cluster so the next job pends without compute nodes.
    dep.scheduler.submit(JobSpec("hog", "u", nprocs=448, procs_per_node=28))
    pending = dep.scheduler.submit(JobSpec("late", "u", nprocs=28))
    with pytest.raises(Exception):
        dep.balancer.allocate(pending, devices=1)


def test_same_domain_fallback():
    """A cluster whose only SSDs share the compute rack: partner-domain
    allocation fails unless fault isolation is explicitly waived."""
    mixed = Rack(
        "r0",
        [
            Node("c0", NodeKind.COMPUTE, "r0", "p0", 4, GiB(8)),
            Node("s0", NodeKind.STORAGE, "r0", "p0", 4, GiB(8), ssd_count=1),
        ],
    )
    dep = Deployment(seed=3, cluster=ClusterSpec([mixed]))
    job = dep.scheduler.submit(JobSpec("j", "u", nprocs=2, procs_per_node=4))
    with pytest.raises(AllocationError):
        dep.balancer.allocate(job, devices=1, bytes_per_device=GiB(1))
    plan = dep.balancer.allocate(
        job, devices=1, bytes_per_device=GiB(1), allow_same_domain=True
    )
    assert plan.grants[0].node_name == "s0"


def test_closest_partner_preferred_with_three_racks():
    """Storage in two different racks: the balancer picks deterministic
    candidates walking partner domains in hop order."""
    racks = [
        Rack("rc", [Node(f"c{i}", NodeKind.COMPUTE, "rc", "pc", 4, GiB(8))
                    for i in range(2)]),
        Rack("rs1", [Node("sA", NodeKind.STORAGE, "rs1", "p1", 4, GiB(8), ssd_count=1)]),
        Rack("rs2", [Node("sB", NodeKind.STORAGE, "rs2", "p2", 4, GiB(8), ssd_count=1)]),
    ]
    dep = Deployment(seed=4, cluster=ClusterSpec(racks))
    job = dep.scheduler.submit(JobSpec("j", "u", nprocs=2, procs_per_node=4))
    plan = dep.balancer.allocate(job, devices=2, bytes_per_device=GiB(1))
    assert sorted(g.node_name for g in plan.grants) == ["sA", "sB"]
    # Deterministic tie-break (equal hops): domain-id order.
    assert plan.grants[0].node_name == "sA"


def test_partition_block_alignment():
    dep = Deployment(seed=5)
    job, plan = dep.submit("j", nprocs=5, devices=2, bytes_per_device=GiB(3))
    block = 32 * 1024
    for rank in range(5):
        part = plan.partition_for(rank, block)
        assert part.offset % block == 0
        assert part.nbytes % block == 0
        assert part.nbytes > 0


def test_domain_of_unknown_node():
    dep = Deployment(seed=6)
    with pytest.raises(AllocationError):
        dep.balancer.domain_of_node("ghost")
