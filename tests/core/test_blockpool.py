"""Unit + property tests for the circular block pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.microfs.blockpool import BlockPool
from repro.errors import InvalidArgument, NoSpace
from repro.units import KiB, MiB


def test_alloc_sequential_blocks_are_contiguous():
    pool = BlockPool(MiB(1), KiB(32))
    blocks = pool.alloc_many(8)
    assert blocks == list(range(8))


def test_capacity():
    pool = BlockPool(MiB(1), KiB(32))
    assert pool.capacity_blocks == 32
    assert pool.free_blocks == 32


def test_exhaustion_raises():
    pool = BlockPool(KiB(64), KiB(32))
    pool.alloc_many(2)
    with pytest.raises(NoSpace):
        pool.alloc()


def test_alloc_many_all_or_nothing():
    pool = BlockPool(KiB(96), KiB(32))
    with pytest.raises(NoSpace):
        pool.alloc_many(4)
    assert pool.free_blocks == 3  # nothing consumed


def test_free_recycles_in_fifo_order():
    pool = BlockPool(KiB(96), KiB(32))
    a = pool.alloc_many(3)
    pool.free(a[1])
    pool.free(a[0])
    # Ring: freed blocks come back after any never-used ones (none left),
    # in free order.
    assert pool.alloc() == a[1]
    assert pool.alloc() == a[0]


def test_double_free_rejected():
    pool = BlockPool(KiB(64), KiB(32))
    block = pool.alloc()
    pool.free(block)
    with pytest.raises(InvalidArgument):
        pool.free(block)


def test_foreign_free_rejected():
    pool = BlockPool(KiB(64), KiB(32))
    with pytest.raises(InvalidArgument):
        pool.free(99)


def test_offset_of():
    pool = BlockPool(MiB(1), KiB(32))
    assert pool.offset_of(0) == 0
    assert pool.offset_of(3) == 3 * KiB(32)
    with pytest.raises(InvalidArgument):
        pool.offset_of(1000)


def test_footprint_shrinks_8x_with_hugeblocks():
    """The paper's 8x metadata reduction from 4K -> 32K blocks."""
    small = BlockPool(MiB(64), 4096)
    huge = BlockPool(MiB(64), KiB(32))
    assert small.footprint_bytes() == 8 * huge.footprint_bytes()


def test_snapshot_restore_roundtrip():
    pool = BlockPool(MiB(1), KiB(32))
    allocated = pool.alloc_many(5)
    pool.free(allocated[2])
    restored = BlockPool.restore(pool.snapshot())
    assert restored.free_blocks == pool.free_blocks
    assert restored.used_blocks == pool.used_blocks
    # Deterministic continuation: both pools allocate identically.
    assert restored.alloc() == pool.alloc()
    assert restored.alloc() == pool.alloc()


def test_invalid_construction():
    with pytest.raises(InvalidArgument):
        BlockPool(0, KiB(32))
    with pytest.raises(InvalidArgument):
        BlockPool(MiB(1), 0)


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(st.sampled_from(["alloc", "free"]), max_size=300),
    nblocks=st.integers(min_value=1, max_value=64),
)
def test_pool_invariants_under_random_ops(ops, nblocks):
    """Property: no block is ever double-allocated; free+used == capacity;
    restore(snapshot) continues identically."""
    pool = BlockPool(nblocks * 4096, 4096)
    live = []
    for op in ops:
        if op == "alloc" and pool.free_blocks > 0:
            block = pool.alloc()
            assert block not in live
            live.append(block)
        elif op == "free" and live:
            pool.free(live.pop(0))
        assert pool.free_blocks + pool.used_blocks == pool.capacity_blocks
    twin = BlockPool.restore(pool.snapshot())
    for _ in range(min(pool.free_blocks, 10)):
        assert twin.alloc() == pool.alloc()
