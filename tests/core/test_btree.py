"""Unit + property tests for the B+Tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.microfs.btree import BPlusTree


def test_insert_and_get():
    tree = BPlusTree(order=4)
    tree.insert("/a", 1)
    tree.insert("/b", 2)
    assert tree.get("/a") == 1
    assert tree.get("/b") == 2
    assert tree.get("/c") is None
    assert tree.get("/c", -1) == -1


def test_overwrite_updates_value():
    tree = BPlusTree(order=4)
    tree.insert("/a", 1)
    tree.insert("/a", 9)
    assert tree.get("/a") == 9
    assert len(tree) == 1


def test_contains():
    tree = BPlusTree(order=4)
    tree.insert("/x", None)  # None values are legal
    assert "/x" in tree
    assert "/y" not in tree


def test_items_sorted():
    tree = BPlusTree(order=4)
    keys = [f"/k{i:03d}" for i in range(100)]
    for i, key in enumerate(reversed(keys)):
        tree.insert(key, i)
    assert [k for k, _ in tree.items()] == sorted(keys)


def test_split_cascade_many_inserts():
    tree = BPlusTree(order=4)
    for i in range(1000):
        tree.insert(f"/f{i:05d}", i)
    tree.check_invariants()
    assert len(tree) == 1000
    assert tree.height() > 1
    assert tree.get("/f00500") == 500


def test_delete_simple():
    tree = BPlusTree(order=4)
    tree.insert("/a", 1)
    assert tree.delete("/a")
    assert tree.get("/a") is None
    assert not tree.delete("/a")
    assert len(tree) == 0


def test_delete_all_then_reinsert():
    tree = BPlusTree(order=4)
    for i in range(200):
        tree.insert(f"/k{i:04d}", i)
    for i in range(200):
        assert tree.delete(f"/k{i:04d}")
    tree.check_invariants()
    assert len(tree) == 0
    tree.insert("/again", 7)
    assert tree.get("/again") == 7


def test_delete_reverse_order():
    tree = BPlusTree(order=5)
    for i in range(300):
        tree.insert(f"/k{i:04d}", i)
    for i in reversed(range(300)):
        assert tree.delete(f"/k{i:04d}")
        if i % 37 == 0:
            tree.check_invariants()
    assert len(tree) == 0


def test_prefix_scan():
    tree = BPlusTree(order=8)
    for i in range(20):
        tree.insert(f"/dir/a{i:02d}", i)
        tree.insert(f"/other/b{i:02d}", i)
    found = list(tree.keys_with_prefix("/dir/"))
    assert len(found) == 20
    assert all(k.startswith("/dir/") for k, _ in found)


def test_order_too_small_rejected():
    with pytest.raises(ValueError):
        BPlusTree(order=3)


def test_node_count_grows_and_shrinks():
    tree = BPlusTree(order=4)
    assert tree.node_count == 1
    for i in range(100):
        tree.insert(f"/k{i:03d}", i)
    grown = tree.node_count
    assert grown > 1
    for i in range(100):
        tree.delete(f"/k{i:03d}")
    assert tree.node_count < grown


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "get"]),
            st.integers(min_value=0, max_value=120),
        ),
        max_size=400,
    ),
    order=st.sampled_from([4, 5, 8, 64]),
)
def test_btree_matches_dict_model(ops, order):
    """Property: the B+Tree behaves exactly like a dict under any
    insert/delete/get interleaving, and keeps its structural invariants."""
    tree = BPlusTree(order=order)
    model = {}
    for op, n in ops:
        key = f"/k{n:04d}"
        if op == "insert":
            tree.insert(key, n)
            model[key] = n
        elif op == "delete":
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert tree.get(key) == model.get(key)
    assert len(tree) == len(model)
    assert dict(tree.items()) == model
    tree.check_invariants()


@settings(max_examples=30, deadline=None)
@given(keys=st.sets(st.text(min_size=1, max_size=12), max_size=200))
def test_btree_arbitrary_string_keys(keys):
    tree = BPlusTree(order=8)
    for i, key in enumerate(sorted(keys)):
        tree.insert(key, i)
    tree.check_invariants()
    assert [k for k, _ in tree.items()] == sorted(keys)
