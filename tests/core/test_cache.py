"""Tests for the DRAM cache layer over microfs (§V future work)."""

import pytest

from repro.core.cache import CachedMicroFS
from repro.errors import InvalidArgument
from repro.units import KiB, MiB

from tests.conftest import MicroFSRig


def make_cached(policy="write-through", capacity=MiB(8)):
    rig = MicroFSRig()
    cache = CachedMicroFS(rig.fs, capacity, policy=policy)
    return rig, cache


def test_invalid_policy_rejected():
    rig = MicroFSRig()
    with pytest.raises(InvalidArgument):
        CachedMicroFS(rig.fs, MiB(1), policy="write-around")


def test_cache_too_small_rejected():
    rig = MicroFSRig()
    with pytest.raises(InvalidArgument):
        CachedMicroFS(rig.fs, 1024)


def test_write_through_persists_immediately():
    rig, cache = make_cached("write-through")

    def scenario():
        fd = yield from cache.open("/f", create=True)
        yield from cache.write(fd, MiB(1))
        yield from cache.close(fd)

    rig.run(scenario())
    # Device saw the data without any fsync.
    assert rig.ssd.counters.get("bytes_written") >= MiB(1)
    assert rig.fs.stat("/f").size == MiB(1)


def test_read_after_write_hits_cache():
    rig, cache = make_cached("write-through")

    def scenario():
        fd = yield from cache.open("/f", create=True)
        yield from cache.write(fd, MiB(1))
        t0 = rig.env.now
        pieces = yield from cache.pread(fd, MiB(1), 0)
        hit_time = rig.env.now - t0
        yield from cache.close(fd)
        return hit_time, sum(p.nbytes for p in pieces)

    hit_time, nbytes = rig.run(scenario())
    assert nbytes == MiB(1)
    assert cache.hit_rate() == 1.0
    # DRAM speed, far faster than the device read path.
    assert hit_time < MiB(1) / 2e9
    assert rig.ssd.counters.get("bytes_read") == 0


def test_eviction_causes_miss():
    rig, cache = make_cached("write-through", capacity=MiB(1))

    def scenario():
        fd = yield from cache.open("/f", create=True)
        yield from cache.write(fd, MiB(4))  # 4x the cache
        pieces = yield from cache.pread(fd, KiB(32), 0)  # oldest block: evicted
        yield from cache.close(fd)
        return pieces

    rig.run(scenario())
    assert cache.counters.get("evictions") > 0
    assert cache.counters.get("misses") > 0
    assert rig.ssd.counters.get("bytes_read") > 0


def test_write_back_defers_device_io():
    rig, cache = make_cached("write-back")

    def scenario():
        fd = yield from cache.open("/f", create=True)
        yield from cache.write(fd, MiB(2))
        buffered = rig.ssd.counters.get("bytes_written")
        yield from cache.fsync(fd)
        drained = rig.ssd.counters.get("bytes_written")
        yield from cache.close(fd)
        return buffered, drained

    buffered, drained = rig.run(scenario())
    assert buffered < MiB(1)  # only metadata traffic before fsync
    assert drained >= MiB(2)
    assert cache.counters.get("writeback_bytes_drained") == MiB(2)


def test_write_back_close_drains():
    rig, cache = make_cached("write-back")

    def scenario():
        fd = yield from cache.open("/f", create=True)
        yield from cache.write(fd, MiB(1))
        yield from cache.close(fd)

    rig.run(scenario())
    assert rig.fs.stat("/f").size == MiB(1)
    assert rig.ssd.counters.get("bytes_written") >= MiB(1)


def test_write_back_read_of_dirty_data():
    rig, cache = make_cached("write-back")

    def scenario():
        fd = yield from cache.open("/f", create=True)
        yield from cache.write(fd, KiB(64))
        pieces = yield from cache.pread(fd, KiB(64), 0)
        yield from cache.close(fd)
        return sum(p.nbytes for p in pieces)

    assert rig.run(scenario()) == KiB(64)


def test_unlink_invalidates():
    rig, cache = make_cached("write-through")

    def scenario():
        fd = yield from cache.open("/f", create=True)
        yield from cache.write(fd, KiB(64))
        yield from cache.close(fd)
        yield from cache.unlink("/f")

    rig.run(scenario())
    assert len(cache._cache) == 0
