"""Tests for RuntimeConfig validation and ablation flags."""

import pytest

from repro.core.config import RuntimeConfig
from repro.errors import InvalidArgument
from repro.units import KiB, MiB


def test_defaults_match_paper():
    config = RuntimeConfig()
    assert config.hugeblock_bytes == KiB(32)  # §IV-B
    assert config.effective_block_bytes == KiB(32)
    assert config.userspace_direct
    assert config.private_namespace
    assert config.metadata_provenance
    assert config.hugeblocks
    assert config.log_coalescing


def test_hugeblocks_flag_switches_block_size():
    config = RuntimeConfig(hugeblocks=False)
    assert config.effective_block_bytes == 4096


def test_invalid_hugeblock_sizes():
    with pytest.raises(InvalidArgument):
        RuntimeConfig(hugeblock_bytes=1000)
    with pytest.raises(InvalidArgument):
        RuntimeConfig(hugeblock_bytes=KiB(32) + 1)
    with pytest.raises(InvalidArgument):
        RuntimeConfig(hugeblock_bytes=0)


def test_invalid_threshold():
    with pytest.raises(InvalidArgument):
        RuntimeConfig(log_free_threshold=0.0)
    with pytest.raises(InvalidArgument):
        RuntimeConfig(log_free_threshold=1.5)


def test_invalid_window():
    with pytest.raises(InvalidArgument):
        RuntimeConfig(coalescing_window=0)


def test_batch_must_cover_block():
    with pytest.raises(InvalidArgument):
        RuntimeConfig(hugeblock_bytes=MiB(16), max_batch_bytes=MiB(8))


def test_with_produces_validated_copy():
    config = RuntimeConfig()
    changed = config.with_(hugeblock_bytes=KiB(64))
    assert changed.hugeblock_bytes == KiB(64)
    assert config.hugeblock_bytes == KiB(32)  # original untouched
    with pytest.raises(InvalidArgument):
        config.with_(hugeblock_bytes=5)


def test_drilldown_base_is_everything_off():
    base = RuntimeConfig.drilldown_base()
    assert not base.userspace_direct
    assert not base.private_namespace
    assert not base.metadata_provenance
    assert not base.hugeblocks
    assert not base.log_coalescing
    assert base.effective_block_bytes == 4096
