"""Direct unit tests for repro.core.control_plane.

The module's pieces were previously exercised only through runtime
integration paths; these tests pin the namespace-service queueing, the
footprint arithmetic, and the swappable metadata-store seam directly.
"""

import pytest

from repro.bench import calibration as cal
from repro.core.config import RuntimeConfig
from repro.core.control_plane import (
    GLOBAL_NS_RTT,
    GLOBAL_NS_SERVICE,
    GlobalNamespaceService,
    LocalMetadataStore,
    MetadataFootprint,
    MetadataStore,
    make_metadata_store,
)
from repro.errors import InvalidArgument
from repro.sim.engine import Environment


# -- GlobalNamespaceService --------------------------------------------------

def test_namespace_service_charges_rtt_plus_service():
    env = Environment()
    svc = GlobalNamespaceService(env)

    proc = env.process(svc.execute())
    env.run_until_complete(proc)
    assert env.now == pytest.approx(GLOBAL_NS_RTT + GLOBAL_NS_SERVICE)
    assert svc.operations == 1


def test_namespace_service_serialises_contending_callers():
    env = Environment()
    svc = GlobalNamespaceService(env, servers=1)
    for _ in range(4):
        env.process(svc.execute())
    env.run()
    # Four ops through one server: the last waits 3 service times.
    assert env.now == pytest.approx(GLOBAL_NS_RTT + 4 * GLOBAL_NS_SERVICE)
    assert svc.mean_wait() > 0.0


def test_namespace_service_mean_wait_empty():
    assert GlobalNamespaceService(Environment()).mean_wait() == 0.0


# -- MetadataFootprint -------------------------------------------------------

def test_footprint_dram_arithmetic():
    fp = MetadataFootprint(inode_count=10, btree_nodes=4, blockpool_bytes=512)
    assert fp.dram_bytes() == (
        10 * cal.NVMECR_INODE_BYTES + 4 * cal.NVMECR_BTREE_NODE_BYTES + 512
    )


def test_footprint_ssd_arithmetic():
    fp = MetadataFootprint(
        log_region_bytes=1000, state_region_bytes=200, dir_file_bytes=30
    )
    assert fp.ssd_bytes() == 1230
    assert fp.dram_bytes() == 0


# -- LocalMetadataStore ------------------------------------------------------

def run(env, gen):
    proc = env.process(gen)
    env.run_until_complete(proc)
    return proc.value


def test_local_store_round_trip():
    env = Environment()
    store = LocalMetadataStore(env)
    assert store.mode == "local"
    assert run(env, store.set("/a", (1, 2))) == (1, 2)
    assert run(env, store.add_grant("job", ((1,),))) == ((1,),)
    assert store.get("/a") == (1, 2)
    assert store.grant_of("job") == ((1,),)
    assert store.keys() == ["/a"]
    assert run(env, store.delete("/a")) == (1, 2)
    assert run(env, store.revoke_grant("job")) == ((1,),)
    assert store.get("/a") is None
    assert store.ops_applied == 4
    assert env.now > 0.0  # every apply spends simulated time


def test_local_store_digest_tracks_content():
    env = Environment()
    a, b = LocalMetadataStore(env), LocalMetadataStore(env)
    run(env, a.set("/k", 1))
    assert a.digest() != b.digest()
    run(env, b.set("/k", 1))
    assert a.digest() == b.digest()


# -- the store factory and the config seam -----------------------------------

def test_factory_local_default():
    store = make_metadata_store(Environment())
    assert isinstance(store, LocalMetadataStore)
    assert isinstance(store, MetadataStore)


def test_factory_raft_requires_group():
    with pytest.raises(ValueError, match="needs a RaftGroup"):
        make_metadata_store(Environment(), "raft")


def test_factory_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown control_plane_mode"):
        make_metadata_store(Environment(), "paxos")


def test_config_validates_control_plane_mode():
    assert RuntimeConfig().control_plane_mode == "local"
    assert RuntimeConfig().with_(
        control_plane_mode="raft"
    ).control_plane_mode == "raft"
    with pytest.raises(InvalidArgument, match="control_plane_mode"):
        RuntimeConfig(control_plane_mode="paxos")
