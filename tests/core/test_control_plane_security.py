"""Direct tests for the global-namespace service, metadata accounting,
and the namespace security manager."""

import pytest

from repro.bench import calibration as cal
from repro.core.control_plane import GlobalNamespaceService, MetadataFootprint
from repro.core.security import SecurityManager
from repro.errors import PermissionDenied
from repro.nvme.namespace import Namespace
from repro.sim import Environment
from repro.units import MiB


def test_global_namespace_serialises():
    env = Environment()
    service = GlobalNamespaceService(env)
    done = []

    def client(i):
        yield from service.execute()
        done.append((i, env.now))

    for i in range(4):
        env.process(client(i))
    env.run()
    times = [t for _i, t in done]
    # Strictly increasing completion times: one at a time.
    assert times == sorted(times)
    assert len(set(times)) == 4
    assert service.operations == 4
    assert service.mean_wait() > 0


def test_global_namespace_multiple_servers_overlap():
    env = Environment()
    service = GlobalNamespaceService(env, servers=4)
    done = []

    def client(i):
        yield from service.execute()
        done.append(env.now)

    for i in range(4):
        env.process(client(i))
    env.run()
    assert len(set(done)) == 1  # all in parallel


def test_metadata_footprint_math():
    fp = MetadataFootprint(
        inode_count=10,
        btree_nodes=3,
        blockpool_bytes=4096,
        log_region_bytes=MiB(16),
        state_region_bytes=MiB(64),
        dir_file_bytes=128,
    )
    assert fp.dram_bytes() == (
        10 * cal.NVMECR_INODE_BYTES + 3 * cal.NVMECR_BTREE_NODE_BYTES + 4096
    )
    assert fp.ssd_bytes() == MiB(16) + MiB(64) + 128


def test_security_manager_accepts_own_job():
    manager = SecurityManager("jobA", uid=0)
    ns = Namespace(1, MiB(1), owner_job="jobA")
    manager.check_namespace(ns)  # no raise
    assert manager.can_access(ns)
    assert manager.denials == 0


def test_security_manager_rejects_foreign_job():
    manager = SecurityManager("jobA", uid=0)
    foreign = Namespace(2, MiB(1), owner_job="jobB")
    with pytest.raises(PermissionDenied):
        manager.check_namespace(foreign)
    assert not manager.can_access(foreign)
    assert manager.denials == 2


def test_security_manager_rejects_unowned():
    manager = SecurityManager("jobA", uid=0)
    unowned = Namespace(3, MiB(1))
    assert not manager.can_access(unowned)
