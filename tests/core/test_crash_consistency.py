"""Crash-consistency property tests: power fails at a *random* instant
mid-workload; recovery must always yield a consistent filesystem, and no
fully-written checkpoint may be lost or corrupted (§III-E's guarantee).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import RuntimeConfig
from repro.core.data_plane import DataPlane
from repro.core.microfs.recovery import recover
from repro.errors import DevicePoweredOff, FSError
from repro.units import KiB, MiB

from tests.conftest import MicroFSRig


def crash_workload(rig, completed):
    """Write checkpoints forever, recording each completed file."""
    fs = rig.fs
    step = 0
    try:
        while True:
            path = f"/ckpt{step:03d}.dat"
            fd = yield from fs.open(path, create=True)
            for _chunk in range(4):
                yield from fs.write(fd, KiB(256))
            yield from fs.fsync(fd)
            yield from fs.close(fd)
            completed.append(path)
            if step % 3 == 2 and fs.needs_state_checkpoint():
                yield from fs.checkpoint_state()
            step += 1
    except (DevicePoweredOff, FSError):
        return  # the crash; anything in flight is fair game


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(cut_at=st.floats(min_value=0.001, max_value=0.25))
def test_power_cut_at_random_instant_recovers_consistently(cut_at):
    rig = MicroFSRig(
        config=RuntimeConfig(
            log_region_bytes=KiB(8), state_region_bytes=MiB(8),
            log_free_threshold=0.5,
        ),
        partition_bytes=MiB(512),
    )
    completed = []

    def killer():
        yield rig.env.timeout(cut_at)
        rig.ssd.power_fail()

    rig.env.process(crash_workload(rig, completed))
    rig.env.process(killer())
    rig.env.run()

    rig.ssd.power_restore()
    data_plane = DataPlane(rig.env, rig.transport, rig.namespace.nsid, rig.config)

    def do_recover():
        return (yield from recover(rig.env, rig.config, data_plane, rig.partition))

    recovered, _report = rig.run(do_recover())
    # Invariant 1: the recovered filesystem is internally consistent.
    recovered.check_consistency()
    # Invariant 2: every checkpoint that completed (close returned before
    # the cut) exists with its full size — "a completely written
    # checkpoint file will never hold corrupted data".
    for path in completed:
        assert recovered.exists(path), f"completed checkpoint {path} lost"
        assert recovered.stat(path).size == 4 * KiB(256)
    # Invariant 3: the recovered instance is writable (log continues).
    def continue_writing():
        fd = yield from recovered.open("/after.dat", create=True)
        yield from recovered.write(fd, KiB(32))
        yield from recovered.close(fd)

    rig.run(continue_writing())
    assert recovered.stat("/after.dat").size == KiB(32)
    recovered.check_consistency()


def test_live_fs_passes_fsck(rig):
    def workload():
        yield from rig.fs.mkdir("/d")
        for i in range(5):
            fd = yield from rig.fs.open(f"/d/f{i}", create=True)
            yield from rig.fs.write(fd, KiB(96))
            yield from rig.fs.close(fd)
        yield from rig.fs.unlink("/d/f2")
        yield from rig.fs.rename("/d/f3", "/promoted")
        yield from rig.fs.truncate("/promoted", KiB(32))

    rig.run(workload())
    rig.fs.check_consistency()


def test_fsck_detects_block_double_use(rig):
    def workload():
        fd = yield from rig.fs.open("/f", create=True)
        yield from rig.fs.write(fd, KiB(64))
        yield from rig.fs.close(fd)

    rig.run(workload())
    # Sabotage: duplicate a block reference.
    inode = rig.fs.stat("/f")
    inode.blocks.append(inode.blocks[0])
    import pytest

    with pytest.raises(AssertionError):
        rig.fs.check_consistency()
