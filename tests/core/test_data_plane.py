"""Tests for the data plane's batching and cost model."""

import numpy as np
import pytest

from repro.bench import calibration as cal
from repro.core.config import RuntimeConfig
from repro.core.data_plane import DataPlane
from repro.fabric.transport import LocalPCIeTransport
from repro.nvme import SSD, Payload
from repro.sim import Environment
from repro.units import GiB, KiB, MiB

from tests.conftest import deterministic_spec


@pytest.fixture
def plane():
    env = Environment()
    ssd = SSD(env, deterministic_spec(), "s0", rng=np.random.default_rng(0))
    ns = ssd.create_namespace(GiB(4))
    config = RuntimeConfig(max_batch_bytes=MiB(8))
    dp = DataPlane(env, LocalPCIeTransport(env, ssd), ns.nsid, config)
    return env, ssd, ns, dp


def run(env, gen):
    return env.run_until_complete(env.process(gen))


def test_write_runs_single_run(plane):
    env, ssd, ns, dp = plane
    total = run(env, dp.write_runs([(0, Payload.synthetic("x", MiB(4)))]))
    assert total == MiB(4)
    assert ssd.counters.get("bytes_written") == MiB(4)


def test_large_run_split_into_batches(plane):
    env, ssd, ns, dp = plane
    run(env, dp.write_runs([(0, Payload.synthetic("big", MiB(32)))]))
    # 32 MiB / 8 MiB batches = 4 device-visible writes.
    assert dp.counters.get("data_bytes_written") == MiB(32)
    assert ns.store.bytes_stored() == MiB(32)


def test_userspace_cost_charged_per_command(plane):
    env, ssd, ns, dp = plane
    t0 = env.now
    run(env, dp.write_runs([(0, Payload.synthetic("x", MiB(1)))], command_size=KiB(32)))
    elapsed = env.now - t0
    software = 32 * cal.SPDK_SUBMIT_COST  # 1 MiB / 32 KiB commands
    floor = MiB(1) / ssd.spec.write_bandwidth
    assert elapsed >= floor + software * 0.9
    assert dp.counters.get("user_cpu_time") == pytest.approx(software)


def test_kernel_mode_charges_trap_and_copy():
    env = Environment()
    ssd = SSD(env, deterministic_spec(), "s0", rng=np.random.default_rng(0))
    ns = ssd.create_namespace(GiB(4))
    config = RuntimeConfig(userspace_direct=False, max_batch_bytes=MiB(8))
    dp = DataPlane(env, LocalPCIeTransport(env, ssd), ns.nsid, config)
    run(env, dp.write_runs([(0, Payload.synthetic("x", MiB(8)))]))
    assert dp.counters.get("kernel_time") > 0
    assert dp.counters.get("user_cpu_time") == 0


def test_read_runs_roundtrip(plane):
    env, ssd, ns, dp = plane

    def scenario():
        yield from dp.write_runs([(0, Payload.of_bytes(b"payload!"))])
        extents = yield from dp.read_runs([(0, 8)])
        return extents

    extents = run(env, scenario())
    assert extents[0].payload.data == b"payload!"


def test_write_log_page_flushes(plane):
    env, ssd, ns, dp = plane
    run(env, dp.write_log_page(KiB(4), b"\xaa" * 4096, 4096))
    assert dp.counters.get("log_flushes") == 1
    assert ssd.counters.get("flushes") == 1
    assert ns.store.read_bytes(KiB(4), 4096) == b"\xaa" * 4096


def test_physical_log_wire_bytes_padded(plane):
    env, ssd, ns, dp = plane
    run(env, dp.write_log_page(0, b"\x01" * 4096, 16384))
    assert dp.counters.get("log_bytes_written") == 16384
    assert ns.store.read_bytes(0, 4096) == b"\x01" * 4096


def test_write_state_pads_to_page(plane):
    env, ssd, ns, dp = plane
    run(env, dp.write_state(MiB(1), b"state-blob"))
    assert dp.counters.get("state_bytes_written") == 4096


def test_read_bytes_zero_fills(plane):
    env, ssd, ns, dp = plane

    def scenario():
        yield from dp.write_runs([(100, Payload.of_bytes(b"xy"))])
        data = yield from dp.read_bytes(96, 8)
        return data

    assert run(env, scenario()) == b"\x00" * 4 + b"xy" + b"\x00" * 2
