"""Tests for inodes and directory entries."""

import pytest

from repro.core.microfs.inode import DirEntry, FileType, Inode
from repro.errors import IsADirectory, NotADirectory


def test_file_inode_defaults():
    inode = Inode(ino=2, ftype=FileType.FILE)
    assert inode.entries is None
    assert inode.blocks == []
    inode.require_file()
    with pytest.raises(NotADirectory):
        inode.require_dir()


def test_directory_inode_gets_entry_table():
    inode = Inode(ino=3, ftype=FileType.DIRECTORY)
    assert inode.entries == {}
    inode.require_dir()
    with pytest.raises(IsADirectory):
        inode.require_file()


def test_directory_entry_lifecycle():
    directory = Inode(ino=1, ftype=FileType.DIRECTORY)
    directory.add_entry(DirEntry("b", 5, FileType.FILE))
    directory.add_entry(DirEntry("a", 4, FileType.DIRECTORY))
    assert directory.entry_names() == ["a", "b"]
    assert directory.lookup("a").ino == 4
    assert directory.lookup("missing") is None
    removed = directory.remove_entry("b")
    assert removed.ino == 5
    assert directory.entry_names() == ["a"]


def test_dir_file_bytes_grows_with_entries():
    directory = Inode(ino=1, ftype=FileType.DIRECTORY)
    empty = directory.dir_file_bytes()
    for i in range(10):
        directory.add_entry(DirEntry(f"f{i}", 10 + i, FileType.FILE))
    assert directory.dir_file_bytes() == empty + 10 * 64


def test_dir_ops_on_file_rejected():
    inode = Inode(ino=2, ftype=FileType.FILE)
    with pytest.raises(NotADirectory):
        inode.add_entry(DirEntry("x", 3, FileType.FILE))
    with pytest.raises(NotADirectory):
        inode.entry_names()


def test_snapshot_restore_file():
    inode = Inode(ino=7, ftype=FileType.FILE, mode=0o600, uid=3,
                  size=12345, blocks=[1, 2, 9])
    restored = Inode.restore(inode.snapshot())
    assert restored.ino == 7
    assert restored.mode == 0o600
    assert restored.uid == 3
    assert restored.size == 12345
    assert restored.blocks == [1, 2, 9]
    assert restored.ftype is FileType.FILE


def test_snapshot_restore_directory_with_entries():
    directory = Inode(ino=1, ftype=FileType.DIRECTORY)
    directory.add_entry(DirEntry("child", 8, FileType.FILE))
    directory.add_entry(DirEntry("sub", 9, FileType.DIRECTORY))
    restored = Inode.restore(directory.snapshot())
    assert restored.entry_names() == ["child", "sub"]
    assert restored.lookup("sub").ftype is FileType.DIRECTORY
