"""Tests for the POSIX interception shim."""

import pytest

from repro.bench.fleet import MicroFSFleet
from repro.errors import BadFileDescriptor, FileExists, FileNotFound, InvalidArgument
from repro.units import MiB


@pytest.fixture
def shim():
    return MicroFSFleet(1, partition_bytes=MiB(512)).clients[0]


def run(shim, gen):
    return shim.env.run_until_complete(shim.env.process(gen))


def test_open_modes(shim):
    def scenario():
        fd = yield from shim.open("/f", "w")
        yield from shim.write(fd, b"abc")
        yield from shim.close(fd)
        # "r" reads, "a" appends, "w" truncates, "x" excl-creates.
        fd = yield from shim.open("/f", "a")
        yield from shim.write(fd, b"def")
        yield from shim.close(fd)
        fd = yield from shim.open("/f", "r")
        pieces = yield from shim.read(fd, 100)
        yield from shim.close(fd)
        return b"".join(p.data for p in pieces)

    assert run(shim, scenario()) == b"abcdef"


def test_open_x_mode_exclusive(shim):
    def scenario():
        fd = yield from shim.open("/f", "x")
        yield from shim.close(fd)
        yield from shim.open("/f", "x")

    with pytest.raises(FileExists):
        run(shim, scenario())


def test_bad_mode_rejected(shim):
    def scenario():
        yield from shim.open("/f", "rw+")

    with pytest.raises(InvalidArgument):
        run(shim, scenario())


def test_fd_is_integer_and_unique(shim):
    def scenario():
        fd1 = yield from shim.open("/a", "w")
        fd2 = yield from shim.open("/b", "w")
        assert isinstance(fd1, int) and isinstance(fd2, int)
        assert fd1 != fd2
        assert fd1 >= 3  # 0-2 reserved for stdio
        yield from shim.close(fd1)
        yield from shim.close(fd2)

    run(shim, scenario())


def test_lseek_and_pread(shim):
    def scenario():
        fd = yield from shim.open("/f", "w")
        yield from shim.write(fd, b"0123456789")
        shim.lseek(fd, 4)
        pieces = yield from shim.read(fd, 3)
        yield from shim.close(fd)
        return b"".join(p.data for p in pieces)

    assert run(shim, scenario()) == b"456"


def test_lseek_negative_rejected(shim):
    def scenario():
        fd = yield from shim.open("/f", "w")
        shim.lseek(fd, -1)

    with pytest.raises(InvalidArgument):
        run(shim, scenario())


def test_use_after_close_raises(shim):
    def scenario():
        fd = yield from shim.open("/f", "w")
        yield from shim.close(fd)
        yield from shim.write(fd, b"x")

    with pytest.raises(BadFileDescriptor):
        run(shim, scenario())


def test_creat_alias(shim):
    def scenario():
        fd = yield from shim.creat("/made", mode=0o600)
        yield from shim.close(fd)

    run(shim, scenario())
    assert shim.stat("/made").mode == 0o600


def test_mkdir_listdir_unlink(shim):
    def scenario():
        yield from shim.mkdir("/d")
        fd = yield from shim.open("/d/f", "w")
        yield from shim.close(fd)
        assert shim.listdir("/d") == ["f"]
        yield from shim.unlink("/d/f")
        assert shim.listdir("/d") == []
        yield from shim.unlink("/d")

    run(shim, scenario())
    with pytest.raises(FileNotFound):
        shim.stat("/d")


def test_open_fds_tracking(shim):
    def scenario():
        assert shim.open_fds == 0
        fd = yield from shim.open("/f", "w")
        assert shim.open_fds == 1
        yield from shim.close(fd)
        assert shim.open_fds == 0

    run(shim, scenario())


def test_synthetic_int_write(shim):
    def scenario():
        fd = yield from shim.open("/bulk", "w")
        written = yield from shim.write(fd, MiB(2))
        yield from shim.fsync(fd)
        yield from shim.close(fd)
        return written

    assert run(shim, scenario()) == MiB(2)
    assert shim.stat("/bulk").size == MiB(2)
