"""Integration tests for MicroFS POSIX semantics over the simulated SSD."""

import pytest

from repro.core.config import RuntimeConfig
from repro.errors import (
    BadFileDescriptor,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    PermissionDenied,
)
from repro.units import KiB, MiB

from tests.conftest import MicroFSRig


def test_create_write_read_roundtrip(rig):
    def scenario():
        fd = yield from rig.fs.open("/ckpt.dat", create=True)
        yield from rig.fs.write(fd, b"hello microfs")
        yield from rig.fs.close(fd)
        fd = yield from rig.fs.open("/ckpt.dat")
        pieces = yield from rig.fs.read(fd, 13)
        yield from rig.fs.close(fd)
        return b"".join(p.data for p in pieces)

    assert rig.run(scenario()) == b"hello microfs"


def test_synthetic_bulk_write(rig):
    def scenario():
        fd = yield from rig.fs.open("/bulk.dat", create=True)
        written = yield from rig.fs.write(fd, MiB(8))
        yield from rig.fs.close(fd)
        return written

    assert rig.run(scenario()) == MiB(8)
    assert rig.fs.stat("/bulk.dat").size == MiB(8)


def test_open_missing_file_raises(rig):
    def scenario():
        yield from rig.fs.open("/nope")

    with pytest.raises(FileNotFound):
        rig.run(scenario())


def test_excl_create_of_existing_raises(rig):
    def scenario():
        fd = yield from rig.fs.open("/f", create=True)
        yield from rig.fs.close(fd)
        yield from rig.fs.open("/f", create=True, excl=True)

    with pytest.raises(FileExists):
        rig.run(scenario())


def test_mkdir_and_nested_files(rig):
    def scenario():
        yield from rig.fs.mkdir("/ckpt")
        yield from rig.fs.mkdir("/ckpt/step1")
        fd = yield from rig.fs.open("/ckpt/step1/rank0.dat", create=True)
        yield from rig.fs.write(fd, KiB(64))
        yield from rig.fs.close(fd)

    rig.run(scenario())
    assert rig.fs.readdir("/") == ["ckpt"]
    assert rig.fs.readdir("/ckpt") == ["step1"]
    assert rig.fs.readdir("/ckpt/step1") == ["rank0.dat"]


def test_mkdir_existing_raises(rig):
    def scenario():
        yield from rig.fs.mkdir("/d")
        yield from rig.fs.mkdir("/d")

    with pytest.raises(FileExists):
        rig.run(scenario())


def test_mkdir_without_parent_raises(rig):
    def scenario():
        yield from rig.fs.mkdir("/no/such/parent")

    with pytest.raises(FileNotFound):
        rig.run(scenario())


def test_open_directory_raises(rig):
    def scenario():
        yield from rig.fs.mkdir("/d")
        yield from rig.fs.open("/d")

    with pytest.raises(IsADirectory):
        rig.run(scenario())


def test_unlink_removes_and_frees_blocks(rig):
    def scenario():
        fd = yield from rig.fs.open("/f", create=True)
        yield from rig.fs.write(fd, MiB(1))
        yield from rig.fs.close(fd)
        used = rig.fs.pool.used_blocks
        yield from rig.fs.unlink("/f")
        return used

    used_before = rig.run(scenario())
    assert used_before > 0
    assert not rig.fs.exists("/f")
    # Only the root directory-file block remains.
    assert rig.fs.pool.used_blocks == 1


def test_unlink_nonempty_directory_raises(rig):
    def scenario():
        yield from rig.fs.mkdir("/d")
        fd = yield from rig.fs.open("/d/f", create=True)
        yield from rig.fs.close(fd)
        yield from rig.fs.unlink("/d")

    with pytest.raises(DirectoryNotEmpty):
        rig.run(scenario())


def test_unlink_empty_directory_ok(rig):
    def scenario():
        yield from rig.fs.mkdir("/d")
        yield from rig.fs.unlink("/d")

    rig.run(scenario())
    assert not rig.fs.exists("/d")


def test_truncate_on_reopen(rig):
    def scenario():
        fd = yield from rig.fs.open("/f", create=True)
        yield from rig.fs.write(fd, MiB(1))
        yield from rig.fs.close(fd)
        fd = yield from rig.fs.open("/f", create=True, truncate=True)
        yield from rig.fs.close(fd)

    rig.run(scenario())
    assert rig.fs.stat("/f").size == 0


def test_write_after_close_raises(rig):
    def scenario():
        fd = yield from rig.fs.open("/f", create=True)
        yield from rig.fs.close(fd)
        yield from rig.fs.write(fd, b"late")

    with pytest.raises(BadFileDescriptor):
        rig.run(scenario())


def test_pwrite_pread_at_offsets(rig):
    def scenario():
        fd = yield from rig.fs.open("/f", create=True)
        yield from rig.fs.pwrite(fd, b"AAAA", 0)
        yield from rig.fs.pwrite(fd, b"BBBB", 4)
        pieces = yield from rig.fs.pread(fd, 8, 0)
        yield from rig.fs.close(fd)
        return b"".join(p.data for p in pieces)

    assert rig.run(scenario()) == b"AAAABBBB"


def test_read_past_eof_clips(rig):
    def scenario():
        fd = yield from rig.fs.open("/f", create=True)
        yield from rig.fs.write(fd, b"12345")
        pieces = yield from rig.fs.pread(fd, 100, 3)
        yield from rig.fs.close(fd)
        return b"".join(p.data for p in pieces)

    assert rig.run(scenario()) == b"45"


def test_multiblock_write_allocates_contiguous(rig):
    def scenario():
        fd = yield from rig.fs.open("/f", create=True)
        yield from rig.fs.write(fd, rig.config.hugeblock_bytes * 4)
        yield from rig.fs.close(fd)

    rig.run(scenario())
    blocks = rig.fs.stat("/f").blocks
    assert len(blocks) == 4
    assert blocks == list(range(blocks[0], blocks[0] + 4))


def test_permission_check_denies_other_uid(rig):
    def scenario():
        fd = yield from rig.fs.open("/secret", create=True, mode=0o600)
        yield from rig.fs.write(fd, b"mine")
        yield from rig.fs.close(fd)
        # Another user truncating the file is a write access.
        yield from rig.fs.open("/secret", truncate=True, uid=42)

    with pytest.raises(PermissionDenied):
        rig.run(scenario())


def test_permission_allows_world_readable(rig):
    def scenario():
        fd = yield from rig.fs.open("/pub", create=True, mode=0o644)
        yield from rig.fs.close(fd)
        fd = yield from rig.fs.open("/pub", uid=42)  # read-only open
        yield from rig.fs.close(fd)

    rig.run(scenario())  # no exception


def test_relative_path_rejected(rig):
    def scenario():
        yield from rig.fs.open("ckpt.dat", create=True)

    with pytest.raises(InvalidArgument):
        rig.run(scenario())


def test_dotdot_rejected(rig):
    def scenario():
        yield from rig.fs.open("/a/../b", create=True)

    with pytest.raises(InvalidArgument):
        rig.run(scenario())


def test_open_file_count_tracks_handles(rig):
    def scenario():
        assert rig.fs.open_file_count == 0
        fd1 = yield from rig.fs.open("/a", create=True)
        fd2 = yield from rig.fs.open("/b", create=True)
        assert rig.fs.open_file_count == 2
        yield from rig.fs.close(fd1)
        yield from rig.fs.close(fd2)
        assert rig.fs.open_file_count == 0

    rig.run(scenario())


def test_write_time_tracks_device_bandwidth(rig):
    """A 64 MiB write should take roughly nbytes/bandwidth sim time."""
    def scenario():
        fd = yield from rig.fs.open("/big", create=True)
        t0 = rig.env.now
        yield from rig.fs.write(fd, MiB(64))
        elapsed = rig.env.now - t0
        yield from rig.fs.close(fd)
        return elapsed

    elapsed = rig.run(scenario())
    floor = MiB(64) / rig.ssd.spec.write_bandwidth
    assert floor < elapsed < 1.3 * floor


def test_wal_ordering_log_before_data(rig):
    """The op log record for a write must be durable before its data:
    after any write completes, the log already contains the record."""
    def scenario():
        fd = yield from rig.fs.open("/f", create=True)
        yield from rig.fs.write(fd, KiB(32))
        yield from rig.fs.close(fd)

    rig.run(scenario())
    from repro.core.microfs.oplog import LogOp, LogRecord

    region = rig.fs.oplog.encode_region()
    ops = [r.op for r in LogRecord.decode_stream(region)]
    assert LogOp.CREAT in ops and LogOp.WRITE in ops


def test_counters_populated(rig):
    def scenario():
        fd = yield from rig.fs.open("/f", create=True)
        yield from rig.fs.write(fd, KiB(64))
        yield from rig.fs.fsync(fd)
        yield from rig.fs.close(fd)

    rig.run(scenario())
    assert rig.fs.counters.get("creates") == 1
    assert rig.fs.counters.get("app_bytes_written") == KiB(64)
    assert rig.fs.counters.get("fsyncs") == 1
    assert rig.fs.counters.get("log_records_new") >= 2


def test_metadata_footprint_accounting(rig):
    def scenario():
        yield from rig.fs.mkdir("/d")
        for i in range(10):
            fd = yield from rig.fs.open(f"/d/f{i}", create=True)
            yield from rig.fs.close(fd)

    rig.run(scenario())
    fp = rig.fs.footprint()
    assert fp.inode_count == 12  # root + /d + 10 files
    assert fp.btree_nodes >= 1
    assert fp.dram_bytes() > 0
    assert fp.ssd_bytes() >= rig.config.log_region_bytes


def test_hugeblocks_reduce_inode_block_list(rig):
    """8x fewer tracked blocks with 32K vs 4K (the §IV-D claim)."""
    huge_rig = MicroFSRig()
    small_rig = MicroFSRig(
        config=RuntimeConfig(
            hugeblocks=False, log_region_bytes=MiB(1), state_region_bytes=MiB(16)
        )
    )

    def scenario(r):
        def inner():
            fd = yield from r.fs.open("/f", create=True)
            yield from r.fs.write(fd, MiB(8))
            yield from r.fs.close(fd)
        r.run(inner())

    scenario(huge_rig)
    scenario(small_rig)
    assert len(small_rig.fs.stat("/f").blocks) == 8 * len(huge_rig.fs.stat("/f").blocks)
