"""Property-based tests: MicroFS against a dict-of-bytes model, and
recovery equivalence under random operation sequences."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import RuntimeConfig
from repro.core.data_plane import DataPlane
from repro.core.microfs.recovery import recover
from repro.errors import FSError
from repro.units import KiB, MiB

from tests.conftest import MicroFSRig


def tiny_rig():
    return MicroFSRig(
        config=RuntimeConfig(log_region_bytes=KiB(64), state_region_bytes=MiB(4)),
        partition_bytes=MiB(64),
    )


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["create", "write", "append", "unlink", "checkpoint"]),
        st.integers(0, 4),  # file index
        st.integers(1, 8),  # write size in KiB units
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_microfs_matches_model_and_recovers(ops):
    """Apply a random op sequence; the live fs must match a trivial
    model, and a recovered instance must match the live one exactly."""
    rig = tiny_rig()
    fs, env = rig.fs, rig.env
    model = {}  # path -> size

    def apply_all():
        for op, index, size_units in ops:
            path = f"/f{index}"
            nbytes = size_units * 1024
            try:
                if op == "create":
                    fd = yield from fs.open(path, create=True, truncate=True)
                    yield from fs.close(fd)
                    model[path] = 0
                elif op in ("write", "append"):
                    if path not in model:
                        continue
                    fd = yield from fs.open(path)
                    offset = model[path] if op == "append" else 0
                    yield from fs.pwrite(fd, nbytes, offset)
                    yield from fs.close(fd)
                    model[path] = max(model[path], offset + nbytes)
                elif op == "unlink":
                    if path not in model:
                        continue
                    yield from fs.unlink(path)
                    del model[path]
                elif op == "checkpoint":
                    yield from fs.checkpoint_state()
            except FSError:
                raise AssertionError(f"unexpected FS error on {op} {path}")

    rig.run(apply_all())

    # Live fs matches the model.
    live = {
        f"/{name}": fs.stat(f"/{name}").size for name in fs.readdir("/")
    }
    assert live == model

    # Recovery reproduces the live state bit-for-bit (sizes + blocks).
    data_plane = DataPlane(env, rig.transport, rig.namespace.nsid, rig.config)

    def do_recover():
        return (yield from recover(env, rig.config, data_plane, rig.partition))

    recovered, _report = rig.run(do_recover())
    recovered_view = {
        f"/{name}": recovered.stat(f"/{name}").size
        for name in recovered.readdir("/")
    }
    assert recovered_view == model
    for path in model:
        assert recovered.stat(path).blocks == fs.stat(path).blocks
    assert recovered.pool.free_blocks == fs.pool.free_blocks


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    sizes=st.lists(st.integers(1, 64), min_size=1, max_size=12),
    coalesce=st.booleans(),
)
def test_sequential_appends_any_sizes_recover(sizes, coalesce):
    """Appends of arbitrary sizes (coalescing on or off) always recover
    to the same total size and block list."""
    rig = MicroFSRig(
        config=RuntimeConfig(
            log_region_bytes=KiB(64), state_region_bytes=MiB(4),
            log_coalescing=coalesce,
        ),
        partition_bytes=MiB(64),
    )

    def workload():
        fd = yield from rig.fs.open("/seq", create=True)
        for size in sizes:
            yield from rig.fs.write(fd, size * 1024)
        yield from rig.fs.close(fd)

    rig.run(workload())
    expected = sum(sizes) * 1024
    assert rig.fs.stat("/seq").size == expected

    data_plane = DataPlane(rig.env, rig.transport, rig.namespace.nsid, rig.config)

    def do_recover():
        return (yield from recover(rig.env, rig.config, data_plane, rig.partition))

    recovered, _ = rig.run(do_recover())
    assert recovered.stat("/seq").size == expected
    assert recovered.stat("/seq").blocks == rig.fs.stat("/seq").blocks
