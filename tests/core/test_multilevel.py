"""Tests for the multi-level checkpointer over NVMe-CR + Lustre."""

import pytest

from repro.baselines import LustreCluster
from repro.bench.fleet import MicroFSFleet
from repro.core.multilevel import MultiLevelCheckpointer
from repro.errors import RecoveryError
from repro.units import MiB


@pytest.fixture
def rig():
    fleet = MicroFSFleet(1, partition_bytes=MiB(768))
    lustre = LustreCluster(fleet.env)
    mlc = MultiLevelCheckpointer(fleet.clients[0], lustre, pfs_interval=5)
    return fleet, lustre, mlc


def run(fleet, gen):
    return fleet.env.run_until_complete(fleet.env.process(gen))


def test_level_policy():
    fleet = MicroFSFleet(1, partition_bytes=MiB(256))
    mlc = MultiLevelCheckpointer(fleet.clients[0], LustreCluster(fleet.env), pfs_interval=10)
    levels = [mlc.level_for(step) for step in range(10)]
    assert levels == [1] * 9 + [2]


def test_invalid_interval():
    fleet = MicroFSFleet(1, partition_bytes=MiB(256))
    with pytest.raises(ValueError):
        MultiLevelCheckpointer(fleet.clients[0], LustreCluster(fleet.env), pfs_interval=0)


def test_write_routes_by_policy(rig):
    fleet, lustre, mlc = rig

    def scenario():
        for step in range(10):
            yield from mlc.write_checkpoint(step, MiB(8))

    run(fleet, scenario())
    levels = [r.level for r in mlc.records]
    assert levels == [1, 1, 1, 1, 2, 1, 1, 1, 1, 2]
    assert mlc.tier_bytes() == {1: 8 * MiB(8), 2: 2 * MiB(8)}
    assert lustre.counters.get("bytes_written") == 2 * MiB(8)


def test_recover_latest_prefers_newest(rig):
    fleet, lustre, mlc = rig

    def scenario():
        for step in range(6):
            yield from mlc.write_checkpoint(step, MiB(4))
        record = yield from mlc.recover_latest()
        return record

    record = run(fleet, scenario())
    assert record.step == 5
    assert record.level == 1


def test_recover_after_cascading_failure_uses_lustre(rig):
    fleet, lustre, mlc = rig

    def scenario():
        for step in range(7):
            yield from mlc.write_checkpoint(step, MiB(4))
        record = yield from mlc.recover_latest(level1_alive=False)
        return record

    record = run(fleet, scenario())
    assert record.level == 2
    assert record.step == 4  # the 1-in-5 Lustre checkpoint


def test_recover_prefer_level(rig):
    fleet, lustre, mlc = rig

    def scenario():
        for step in range(5):
            yield from mlc.write_checkpoint(step, MiB(4))
        record = yield from mlc.recover_latest(prefer_level=2)
        return record

    record = run(fleet, scenario())
    assert record.level == 2


def test_no_checkpoint_raises(rig):
    fleet, lustre, mlc = rig

    def scenario():
        yield from mlc.recover_latest()

    with pytest.raises(RecoveryError):
        run(fleet, scenario())


def test_lustre_tier_is_raid_limited(rig):
    """A level-2 checkpoint runs at the PFS's aggregate RAID bandwidth
    (~6 GB/s) — ample for one rank, the bottleneck at job scale."""
    fleet, lustre, mlc = rig
    env = fleet.env

    def scenario():
        t0 = env.now
        yield from mlc.write_checkpoint(4, MiB(512))  # level 2
        return env.now - t0

    level2_time = run(fleet, scenario())
    floor = MiB(512) / lustre.aggregate_bandwidth()
    assert floor <= level2_time < 1.3 * floor
