"""Tests for the multi-level checkpointer over NVMe-CR + Lustre."""

import pytest

from repro.baselines import LustreCluster
from repro.bench.fleet import MicroFSFleet
from repro.core.multilevel import MultiLevelCheckpointer
from repro.core.placement import FixedIntervalPolicy, TierTarget
from repro.errors import InvalidArgument, RecoveryError
from repro.units import MiB


@pytest.fixture
def rig():
    fleet = MicroFSFleet(1, partition_bytes=MiB(768))
    lustre = LustreCluster(fleet.env)
    mlc = MultiLevelCheckpointer(fleet.clients[0], lustre, pfs_interval=5)
    return fleet, lustre, mlc


def run(fleet, gen):
    return fleet.env.run_until_complete(fleet.env.process(gen))


def test_level_policy():
    fleet = MicroFSFleet(1, partition_bytes=MiB(256))
    mlc = MultiLevelCheckpointer(fleet.clients[0], LustreCluster(fleet.env), pfs_interval=10)
    levels = [mlc.level_for(step) for step in range(10)]
    assert levels == [1] * 9 + [2]


def test_invalid_interval():
    fleet = MicroFSFleet(1, partition_bytes=MiB(256))
    with pytest.raises(InvalidArgument):
        MultiLevelCheckpointer(fleet.clients[0], LustreCluster(fleet.env), pfs_interval=0)


def test_missing_tier_clients_rejected():
    fleet = MicroFSFleet(1, partition_bytes=MiB(256))
    lustre = LustreCluster(fleet.env)
    with pytest.raises(InvalidArgument):
        MultiLevelCheckpointer(None, lustre)


def test_no_durable_tier_mode_raises_at_durable_write():
    """level2=None is the deliberate no-durable-tier mode (resilience
    orchestrator); only *placing* a checkpoint there is an error."""
    fleet = MicroFSFleet(1, partition_bytes=MiB(256))
    mlc = MultiLevelCheckpointer(fleet.clients[0], None, pfs_interval=1)
    mlc._dir_made = True

    def scenario():
        yield from mlc.write_checkpoint(0, MiB(1))  # every step durable

    with pytest.raises(InvalidArgument):
        run(fleet, scenario())


def test_targets_mode_validation():
    fleet = MicroFSFleet(1, partition_bytes=MiB(256))
    lustre = LustreCluster(fleet.env)
    pfs = TierTarget("pfs", lustre, write_bandwidth=1e9, read_bandwidth=1e9)
    with pytest.raises(InvalidArgument):
        MultiLevelCheckpointer(targets=[pfs])  # < 2 tiers
    holey = TierTarget("hole", None, write_bandwidth=1e9, read_bandwidth=1e9)
    with pytest.raises(InvalidArgument):
        MultiLevelCheckpointer(targets=[holey, pfs])


def test_level_for_boundaries():
    """level_for is the §III-F rule: 1-based steps-from-0, every k-th
    checkpoint durable — including the k=1 everything-durable edge."""
    fleet = MicroFSFleet(1, partition_bytes=MiB(256))
    lustre = LustreCluster(fleet.env)
    mlc = MultiLevelCheckpointer(fleet.clients[0], lustre, pfs_interval=3)
    assert [mlc.level_for(s) for s in range(7)] == [1, 1, 2, 1, 1, 2, 1]
    every = MultiLevelCheckpointer(fleet.clients[0], lustre, pfs_interval=1)
    assert [every.level_for(s) for s in range(3)] == [2, 2, 2]


def test_write_routes_by_policy(rig):
    fleet, lustre, mlc = rig

    def scenario():
        for step in range(10):
            yield from mlc.write_checkpoint(step, MiB(8))

    run(fleet, scenario())
    levels = [r.level for r in mlc.records]
    assert levels == [1, 1, 1, 1, 2, 1, 1, 1, 1, 2]
    assert mlc.tier_bytes() == {1: 8 * MiB(8), 2: 2 * MiB(8)}
    assert lustre.counters.get("bytes_written") == 2 * MiB(8)


def test_recover_latest_prefers_newest(rig):
    fleet, lustre, mlc = rig

    def scenario():
        for step in range(6):
            yield from mlc.write_checkpoint(step, MiB(4))
        record = yield from mlc.recover_latest()
        return record

    record = run(fleet, scenario())
    assert record.step == 5
    assert record.level == 1


def test_recover_after_cascading_failure_uses_lustre(rig):
    fleet, lustre, mlc = rig

    def scenario():
        for step in range(7):
            yield from mlc.write_checkpoint(step, MiB(4))
        record = yield from mlc.recover_latest(level1_alive=False)
        return record

    record = run(fleet, scenario())
    assert record.level == 2
    assert record.step == 4  # the 1-in-5 Lustre checkpoint


def test_recover_prefer_level(rig):
    fleet, lustre, mlc = rig

    def scenario():
        for step in range(5):
            yield from mlc.write_checkpoint(step, MiB(4))
        record = yield from mlc.recover_latest(prefer_level=2)
        return record

    record = run(fleet, scenario())
    assert record.level == 2


def test_no_checkpoint_raises(rig):
    fleet, lustre, mlc = rig

    def scenario():
        yield from mlc.recover_latest()

    with pytest.raises(RecoveryError):
        run(fleet, scenario())


def test_recovery_walk_is_newest_first(rig):
    """The walk scans records newest-first and takes the first survivor,
    not the newest overall: with level 1 dead, an *older* level-2
    checkpoint wins over every newer level-1 one."""
    fleet, lustre, mlc = rig

    def scenario():
        for step in range(10):  # durable at steps 4 and 9 (k=5)
            yield from mlc.write_checkpoint(step, MiB(2))
        yield from mlc.write_checkpoint(10, MiB(2))  # newest is level 1
        record = yield from mlc.recover_latest(dead_levels=[1])
        return record

    record = run(fleet, scenario())
    assert (record.step, record.level) == (9, 2)


def test_forget_levels_drops_records(rig):
    fleet, lustre, mlc = rig

    def scenario():
        for step in range(10):
            yield from mlc.write_checkpoint(step, MiB(2))

    run(fleet, scenario())
    mlc.forget_levels([1])
    assert [r.level for r in mlc.records] == [2, 2]
    assert mlc.tier_bytes() == {1: 0, 2: 2 * MiB(2)}


def test_targets_mode_routes_and_recovers():
    """An explicit 3-deep hierarchy: placement routes by positional
    level and recovery reads through the matching target client."""
    from repro.sim.engine import Environment
    from repro.tiers import NVMDevice, TierClient

    env = Environment()
    lustre = LustreCluster(env)
    fast = TierClient(NVMDevice(env), name="nvm")
    mid = TierClient(NVMDevice(env, name="nvm1"), name="mid")
    targets = [
        TierTarget("nvm", fast, write_bandwidth=2.3e9, read_bandwidth=6.6e9,
                   residual_failure_prob=0.67),
        TierTarget("mid", mid, write_bandwidth=2.2e9, read_bandwidth=2.4e9,
                   residual_failure_prob=0.33),
        TierTarget("pfs", lustre, write_bandwidth=6e9, read_bandwidth=6e9),
    ]
    mlc = MultiLevelCheckpointer(
        targets=targets, policy=FixedIntervalPolicy(4, durable_level=3),
    )
    assert mlc.n_levels == 3
    assert [t.level for t in targets] == [1, 2, 3]

    def scenario():
        for step in range(8):  # durable at steps 3 and 7
            yield from mlc.write_checkpoint(step, MiB(1))
        fast.lose_data()
        mlc.forget_levels([1])
        record = yield from mlc.recover_latest(dead_levels=[1])
        return record

    record = env.run_until_complete(env.process(scenario()))
    assert (record.step, record.level) == (7, 3)
    assert lustre.counters.get("bytes_written") == 2 * MiB(1)


def test_lustre_tier_is_raid_limited(rig):
    """A level-2 checkpoint runs at the PFS's aggregate RAID bandwidth
    (~6 GB/s) — ample for one rank, the bottleneck at job scale."""
    fleet, lustre, mlc = rig
    env = fleet.env

    def scenario():
        t0 = env.now
        yield from mlc.write_checkpoint(4, MiB(512))  # level 2
        return env.now - t0

    level2_time = run(fleet, scenario())
    floor = MiB(512) / lustre.aggregate_bandwidth()
    assert floor <= level2_time < 1.3 * floor
