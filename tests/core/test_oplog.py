"""Unit + property tests for the operation log and record coalescing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.microfs.oplog import AppendResult, LogOp, LogRecord, OperationLog
from repro.errors import NoSpace
from repro.units import KiB, MiB


def test_append_returns_page_image():
    log = OperationLog(KiB(64))
    result = log.append(LogOp.CREAT, ino=2, parent_ino=1, mode=0o644, name="f.dat")
    assert isinstance(result, AppendResult)
    assert not result.coalesced
    assert result.region_offset == 0
    assert len(result.page_bytes) == 4096
    assert log.record_count == 1


def test_lsn_monotonic():
    log = OperationLog(KiB(64))
    r1 = log.append(LogOp.CREAT, ino=2, parent_ino=1, name="a")
    r2 = log.append(LogOp.WRITE, ino=2, a=0, b=100)
    assert r2.record.lsn == r1.record.lsn + 1


def test_encode_decode_roundtrip():
    log = OperationLog(KiB(64))
    log.append(LogOp.MKDIR, ino=5, parent_ino=1, mode=0o755, name="ckpt")
    log.append(LogOp.CREAT, ino=6, parent_ino=5, mode=0o644, name="rank_000.dat")
    log.append(LogOp.WRITE, ino=6, a=0, b=1 << 20)
    log.append(LogOp.UNLINK, ino=6, parent_ino=5, name="rank_000.dat")
    decoded = LogRecord.decode_stream(log.encode_region())
    assert [r.op for r in decoded] == [LogOp.MKDIR, LogOp.CREAT, LogOp.WRITE, LogOp.UNLINK]
    assert decoded[1].name == "rank_000.dat"
    assert decoded[2].b == 1 << 20


def test_long_name_uses_multiple_slots():
    log = OperationLog(KiB(64))
    name = "x" * 100  # fixed header 54B + 100 > 2 slots
    result = log.append(LogOp.CREAT, ino=2, parent_ino=1, name=name)
    assert result.record.wire_slots >= 2
    decoded = LogRecord.decode_stream(log.encode_region())
    assert decoded[0].name == name


def test_coalescing_merges_sequential_writes():
    """Figure 5: consecutive writes to the same file become one record."""
    log = OperationLog(KiB(64), coalescing=True)
    log.append(LogOp.CREAT, ino=2, parent_ino=1, name="f")
    first = log.append(LogOp.WRITE, ino=2, a=0, b=1024)
    second = log.append(LogOp.WRITE, ino=2, a=1024, b=1024)
    assert second.coalesced
    assert second.record is first.record
    assert first.record.b == 2048
    assert log.record_count == 2  # CREAT + one WRITE
    assert log.total_coalesced == 1


def test_coalescing_rewrites_same_page():
    log = OperationLog(KiB(64), coalescing=True)
    log.append(LogOp.CREAT, ino=2, parent_ino=1, name="f")
    first = log.append(LogOp.WRITE, ino=2, a=0, b=512)
    second = log.append(LogOp.WRITE, ino=2, a=512, b=512)
    assert second.region_offset == first.region_offset


def test_non_adjacent_writes_not_coalesced():
    log = OperationLog(KiB(64), coalescing=True)
    log.append(LogOp.WRITE, ino=2, a=0, b=100)
    result = log.append(LogOp.WRITE, ino=2, a=500, b=100)  # gap
    assert not result.coalesced
    assert log.record_count == 2


def test_interleaved_files_within_window_coalesce():
    log = OperationLog(KiB(64), coalescing=True, window=8)
    log.append(LogOp.WRITE, ino=2, a=0, b=100)
    log.append(LogOp.WRITE, ino=3, a=0, b=100)
    # ino=2's previous write is still in the window but is not the most
    # recent write to ino 2's *offset chain*? It is: coalesce succeeds.
    result = log.append(LogOp.WRITE, ino=2, a=100, b=100)
    assert result.coalesced


def test_window_eviction_stops_coalescing():
    log = OperationLog(KiB(64), coalescing=True, window=2)
    log.append(LogOp.WRITE, ino=2, a=0, b=100)
    for i in range(3):  # push ino=2's record out of the window
        log.append(LogOp.WRITE, ino=10 + i, a=0, b=50)
    result = log.append(LogOp.WRITE, ino=2, a=100, b=100)
    assert not result.coalesced


def test_coalescing_disabled():
    log = OperationLog(KiB(64), coalescing=False)
    log.append(LogOp.WRITE, ino=2, a=0, b=100)
    result = log.append(LogOp.WRITE, ino=2, a=100, b=100)
    assert not result.coalesced
    assert log.record_count == 2


def test_physical_records_consume_4k_each():
    compact = OperationLog(MiB(1), physical_records=False)
    physical = OperationLog(MiB(1), physical_records=True)
    for log in (compact, physical):
        log.append(LogOp.CREAT, ino=2, parent_ino=1, name="f")
    assert physical.free_slots < compact.free_slots
    assert physical.capacity_slots - physical.free_slots == 4096 // 64


def test_physical_records_wire_bytes():
    log = OperationLog(MiB(1), physical_records=True)
    result = log.append(LogOp.WRITE, ino=2, a=0, b=100)
    assert result.wire_bytes == 4096


def test_log_full_raises():
    log = OperationLog(4096, coalescing=False)  # 64 slots
    for i in range(64):
        log.append(LogOp.WRITE, ino=i + 10, a=0, b=1)
    with pytest.raises(NoSpace):
        log.append(LogOp.WRITE, ino=999, a=0, b=1)


def test_reset_bumps_epoch_and_clears():
    log = OperationLog(KiB(64))
    log.append(LogOp.CREAT, ino=2, parent_ino=1, name="f")
    lsn_before = log.next_lsn
    log.reset()
    assert log.record_count == 0
    assert log.epoch == 2
    assert log.free_fraction == 1.0
    result = log.append(LogOp.WRITE, ino=2, a=0, b=10)
    assert result.record.epoch == 2
    assert result.record.lsn == lsn_before  # lsn continues across epochs


def test_replayable_filters_epoch_and_lsn():
    log = OperationLog(KiB(64))
    log.append(LogOp.CREAT, ino=2, parent_ino=1, name="old")
    region_with_old = log.encode_region()
    log.reset()
    log.append(LogOp.CREAT, ino=3, parent_ino=1, name="new")
    # Simulate the on-device region: new epoch-2 page overlaid on old data.
    region = bytearray(region_with_old.ljust(KiB(64), b"\x00"))
    new_region = log.encode_region()
    region[: len(new_region)] = new_region
    records = OperationLog.replayable(bytes(region), epoch=2, after_lsn=1)
    assert len(records) == 1
    assert records[0].name == "new"


def test_free_fraction_decreases():
    log = OperationLog(4096, coalescing=False)
    assert log.free_fraction == 1.0
    log.append(LogOp.WRITE, ino=2, a=0, b=1)
    assert log.free_fraction == pytest.approx(63 / 64)


@settings(max_examples=40, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(2, 6), st.integers(0, 50)),  # (ino, length unit)
        min_size=1,
        max_size=60,
    )
)
def test_coalescing_preserves_replay_semantics(writes):
    """Property: with or without coalescing, the replayable records
    describe the same total (ino -> max file extent) mapping when writes
    are sequential appends per file."""
    plain = OperationLog(MiB(1), coalescing=False)
    merged = OperationLog(MiB(1), coalescing=True, window=8)
    cursor = {}
    for ino, units in writes:
        length = units * 64 + 64
        offset = cursor.get(ino, 0)
        cursor[ino] = offset + length
        for log in (plain, merged):
            log.append(LogOp.WRITE, ino=ino, a=offset, b=length)

    def extents(log):
        out = {}
        for record in LogRecord.decode_stream(log.encode_region()):
            out[record.ino] = max(out.get(record.ino, 0), record.a + record.b)
        return out

    assert extents(plain) == extents(merged)
    assert merged.record_count <= plain.record_count
