"""Tests for checkpoint placement policies (fixed-k and cost-model)."""

import pytest

from repro.core.placement import (
    CostModelPolicy,
    FixedIntervalPolicy,
    TierTarget,
)
from repro.errors import InvalidArgument
from repro.units import GB_per_s, MiB


def _targets(strike_mtbf_irrelevant=None):
    fast = TierTarget(
        "nvm", object(), write_bandwidth=GB_per_s(2.3),
        read_bandwidth=GB_per_s(6.6), residual_failure_prob=0.67,
    )
    durable = TierTarget(
        "pfs", object(), write_bandwidth=GB_per_s(0.5),
        read_bandwidth=GB_per_s(0.5), restore_cost_s=0.5,
    )
    return [fast, durable]


# -- TierTarget -------------------------------------------------------------


def test_tier_target_validation():
    with pytest.raises(InvalidArgument):
        TierTarget("bad", object(), write_bandwidth=0, read_bandwidth=1.0)
    with pytest.raises(InvalidArgument):
        TierTarget("bad", object(), write_bandwidth=1.0, read_bandwidth=1.0,
                   residual_failure_prob=1.5)


def test_tier_target_times():
    t = TierTarget("t", object(), write_bandwidth=1e9, read_bandwidth=2e9,
                   write_latency=0.001, restore_cost_s=0.5)
    assert t.write_time(MiB(512)) == pytest.approx(0.001 + MiB(512) / 1e9)
    assert t.read_time(MiB(512)) == pytest.approx(0.5 + MiB(512) / 2e9)
    assert t.durable


# -- FixedIntervalPolicy ----------------------------------------------------


def test_fixed_interval_matches_paper_rule():
    policy = FixedIntervalPolicy(10)
    levels = [policy.place(s, MiB(1), float(s)) for s in range(20)]
    assert levels == [1] * 9 + [2] + [1] * 9 + [2]
    # preview is the same pure formula
    assert [policy.preview(s) for s in range(20)] == levels


def test_fixed_interval_custom_levels():
    policy = FixedIntervalPolicy(4, fast_level=1, durable_level=4)
    assert [policy.preview(s) for s in range(8)] == [1, 1, 1, 4, 1, 1, 1, 4]
    with pytest.raises(InvalidArgument):
        FixedIntervalPolicy(0)


# -- CostModelPolicy --------------------------------------------------------


def test_cost_model_validation():
    fast, durable = _targets()
    with pytest.raises(InvalidArgument):
        CostModelPolicy([], strike_mtbf=60.0)
    with pytest.raises(InvalidArgument):
        CostModelPolicy([fast, durable], strike_mtbf=0.0)
    with pytest.raises(InvalidArgument):
        CostModelPolicy([fast], strike_mtbf=60.0)  # no durable tier


def test_cost_model_goes_durable_as_risk_accumulates():
    """With no durable checkpoint yet and real strike risk, the first
    placement is durable; right after it, the fast tier wins again."""
    targets = _targets()
    policy = CostModelPolicy(targets, strike_mtbf=30.0)
    first = policy.place(0, MiB(64), now=10.0)
    assert first == 2  # everything so far is at risk
    second = policy.place(1, MiB(64), now=11.0)
    assert second == 1  # protected by the fresh durable checkpoint


def test_cost_model_durable_cadence_scales_with_mtbf():
    """A harsher strike regime produces a denser durable cadence."""

    def durable_count(mtbf):
        policy = CostModelPolicy(_targets(), strike_mtbf=mtbf)
        return sum(
            1 for s in range(30)
            if policy.place(s, MiB(64), now=float(s)) == 2
        )

    assert durable_count(5.0) > durable_count(50.0) >= durable_count(5000.0)


def test_cost_model_note_loss_resets_protection():
    """After losing the fast tier, the policy must not keep crediting
    the wiped checkpoints as protection."""
    policy = CostModelPolicy(_targets(), strike_mtbf=30.0)
    policy.place(0, MiB(64), now=1.0)   # durable
    policy.place(1, MiB(64), now=2.0)   # fast
    before = policy._since_surviving(1, 3.0)
    policy.note_loss([2])               # durable tier bookkeeping wiped
    after = policy._since_surviving(1, 3.0)
    assert after > before


def test_cost_model_preview_is_side_effect_free():
    policy = CostModelPolicy(_targets(), strike_mtbf=30.0)
    state = (list(policy._last_at), policy._last_now)
    policy.preview(0)
    assert (list(policy._last_at), policy._last_now) == state
