"""Crash-recovery tests: state checkpoints, log replay, power loss.

These exercise the paper's central durability claims (§III-E): metadata
is always reconstructible from the state checkpoint + operation log, a
completely-written checkpoint file never holds corrupted data, and log
record coalescing shortens replay.
"""


from repro.core.config import RuntimeConfig
from repro.core.data_plane import DataPlane
from repro.core.microfs.recovery import recover
from repro.units import KiB, MiB

from tests.conftest import MicroFSRig


def fresh_recovery(rig):
    """Recover a new fs instance from the rig's partition."""
    data_plane = DataPlane(
        rig.env, rig.transport, rig.namespace.nsid, rig.config
    )

    def scenario():
        return (yield from recover(
            rig.env, rig.config, data_plane, rig.partition, instance_name="recovered"
        ))

    return rig.run(scenario())


def test_recovery_replays_creates_and_writes(rig):
    def workload():
        yield from rig.fs.mkdir("/ckpt")
        fd = yield from rig.fs.open("/ckpt/rank0.dat", create=True)
        yield from rig.fs.write(fd, MiB(2))
        yield from rig.fs.close(fd)

    rig.run(workload())
    recovered, report = fresh_recovery(rig)
    assert not report.state_loaded  # no state checkpoint was taken
    assert report.records_replayed >= 3  # mkdir + creat + write
    assert recovered.exists("/ckpt/rank0.dat")
    assert recovered.stat("/ckpt/rank0.dat").size == MiB(2)
    assert recovered.readdir("/ckpt") == ["rank0.dat"]


def test_recovery_block_assignment_deterministic(rig):
    """Replay must re-allocate exactly the blocks the live run used —
    the property that lets log records omit block addresses."""
    def workload():
        fd = yield from rig.fs.open("/a", create=True)
        yield from rig.fs.write(fd, MiB(1))
        yield from rig.fs.close(fd)
        fd = yield from rig.fs.open("/b", create=True)
        yield from rig.fs.write(fd, KiB(96))
        yield from rig.fs.close(fd)

    rig.run(workload())
    live_a = rig.fs.stat("/a").blocks
    live_b = rig.fs.stat("/b").blocks
    recovered, _report = fresh_recovery(rig)
    assert recovered.stat("/a").blocks == live_a
    assert recovered.stat("/b").blocks == live_b


def test_recovered_data_readable(rig):
    """A completely written checkpoint file recovers with its content."""
    def workload():
        fd = yield from rig.fs.open("/real.dat", create=True)
        yield from rig.fs.write(fd, b"precious checkpoint bytes")
        yield from rig.fs.close(fd)

    rig.run(workload())
    recovered, _ = fresh_recovery(rig)

    def readback():
        fd = yield from recovered.open("/real.dat")
        pieces = yield from recovered.read(fd, 25)
        yield from recovered.close(fd)
        return b"".join(p.data for p in pieces)

    assert rig.run(readback()) == b"precious checkpoint bytes"


def test_recovery_applies_unlink(rig):
    def workload():
        for name in ("/keep", "/gone"):
            fd = yield from rig.fs.open(name, create=True)
            yield from rig.fs.write(fd, KiB(64))
            yield from rig.fs.close(fd)
        yield from rig.fs.unlink("/gone")

    rig.run(workload())
    recovered, _ = fresh_recovery(rig)
    assert recovered.exists("/keep")
    assert not recovered.exists("/gone")
    assert recovered.pool.used_blocks == rig.fs.pool.used_blocks


def test_state_checkpoint_then_recovery(rig):
    def workload():
        yield from rig.fs.mkdir("/d")
        fd = yield from rig.fs.open("/d/old.dat", create=True)
        yield from rig.fs.write(fd, MiB(1))
        yield from rig.fs.close(fd)
        yield from rig.fs.checkpoint_state()
        # Post-checkpoint activity lives only in the (new-epoch) log.
        fd = yield from rig.fs.open("/d/new.dat", create=True)
        yield from rig.fs.write(fd, KiB(32))
        yield from rig.fs.close(fd)

    rig.run(workload())
    recovered, report = fresh_recovery(rig)
    assert report.state_loaded
    assert report.records_replayed >= 2  # creat + write of new.dat only
    assert recovered.exists("/d/old.dat")
    assert recovered.exists("/d/new.dat")
    assert recovered.stat("/d/old.dat").blocks == rig.fs.stat("/d/old.dat").blocks
    assert recovered.stat("/d/new.dat").blocks == rig.fs.stat("/d/new.dat").blocks


def test_state_checkpoint_resets_log(rig):
    def workload():
        for i in range(5):
            fd = yield from rig.fs.open(f"/f{i}", create=True)
            yield from rig.fs.write(fd, KiB(32))
            yield from rig.fs.close(fd)
        before = rig.fs.oplog.record_count
        yield from rig.fs.checkpoint_state()
        return before

    before = rig.run(workload())
    assert before > 0
    assert rig.fs.oplog.record_count == 0
    assert rig.fs.state_checkpoints == 1


def test_background_checkpointer_triggers_on_threshold():
    rig = MicroFSRig(
        config=RuntimeConfig(
            log_region_bytes=KiB(8),  # 128 slots -> fills fast
            state_region_bytes=MiB(8),
            log_free_threshold=0.5,
        )
    )
    stop = rig.env.event()
    rig.env.process(rig.fs.background_checkpointer(poll_interval=0.0005, stop_event=stop))

    def workload():
        for i in range(40):
            fd = yield from rig.fs.open(f"/f{i:02d}", create=True)
            yield from rig.fs.write(fd, KiB(32))
            yield from rig.fs.close(fd)
            yield rig.env.timeout(0.002)  # compute phase between files
        stop.succeed()

    rig.run(workload())
    assert rig.fs.state_checkpoints >= 1
    # The log never overflowed because checkpoints reclaimed space.
    assert rig.fs.oplog.free_fraction > 0.0


def test_checkpointer_waits_for_closed_files():
    """No state checkpoint while files are open (§III-E trigger)."""
    rig = MicroFSRig(
        config=RuntimeConfig(
            log_region_bytes=KiB(8),
            state_region_bytes=MiB(8),
            log_free_threshold=0.9,
        )
    )

    def workload():
        fd = yield from rig.fs.open("/f", create=True)
        # Non-adjacent strided writes defeat coalescing, filling the log.
        for i in range(60):
            yield from rig.fs.pwrite(fd, KiB(32), 2 * i * KiB(32))
        assert not rig.fs.needs_state_checkpoint()  # file still open
        yield from rig.fs.close(fd)
        assert rig.fs.needs_state_checkpoint()

    rig.run(workload())


def test_power_loss_preserves_completed_files(rig):
    """Completed writes + log survive power loss; recovery sees them."""
    from repro.errors import DevicePoweredOff

    outcome = {}

    def workload():
        fd = yield from rig.fs.open("/done.dat", create=True)
        yield from rig.fs.write(fd, MiB(1))
        yield from rig.fs.close(fd)
        fd = yield from rig.fs.open("/inflight.dat", create=True)
        try:
            yield from rig.fs.write(fd, MiB(256))  # power dies mid-write
            outcome["second"] = "completed"
        except DevicePoweredOff:
            outcome["second"] = "lost"

    def killer():
        yield rig.env.timeout(0.05)
        rig.ssd.power_fail()

    rig.env.process(workload())
    rig.env.process(killer())
    rig.env.run()
    assert outcome["second"] == "lost"
    rig.ssd.power_restore()
    recovered, report = fresh_recovery(rig)
    assert recovered.exists("/done.dat")
    assert recovered.stat("/done.dat").size == MiB(1)
    # The in-flight file's CREAT was durable (WAL), so the file exists;
    # its completed size is whatever the log captured, not corrupt data.
    assert recovered.exists("/inflight.dat")


def test_coalescing_shortens_replay(rig):
    """Table II: coalescing cuts replayed records dramatically."""
    def workload(fs):
        def inner():
            fd = yield from fs.open("/big.dat", create=True)
            for _ in range(64):
                yield from fs.write(fd, KiB(256))  # sequential appends
            yield from fs.close(fd)
        return inner()

    rig.run(workload(rig.fs))
    _recovered, report = fresh_recovery(rig)

    plain_rig = MicroFSRig(
        config=RuntimeConfig(
            log_coalescing=False, log_region_bytes=MiB(1), state_region_bytes=MiB(16)
        )
    )
    plain_rig.run(workload(plain_rig.fs))
    data_plane = DataPlane(
        plain_rig.env, plain_rig.transport, plain_rig.namespace.nsid, plain_rig.config
    )

    def recover_plain():
        return (yield from recover(
            plain_rig.env, plain_rig.config, data_plane, plain_rig.partition
        ))

    _fs2, report_plain = plain_rig.run(recover_plain())
    assert report.records_replayed < report_plain.records_replayed / 10
    # Both recover the same file size.
    assert report.files_recovered == report_plain.files_recovered == 1


def test_double_checkpoint_alternates_slots(rig):
    def workload():
        fd = yield from rig.fs.open("/f1", create=True)
        yield from rig.fs.close(fd)
        yield from rig.fs.checkpoint_state()
        fd = yield from rig.fs.open("/f2", create=True)
        yield from rig.fs.close(fd)
        yield from rig.fs.checkpoint_state()
        fd = yield from rig.fs.open("/f3", create=True)
        yield from rig.fs.close(fd)

    rig.run(workload())
    recovered, report = fresh_recovery(rig)
    assert report.state_loaded
    for name in ("/f1", "/f2", "/f3"):
        assert recovered.exists(name)


def test_recovery_of_empty_fs(rig):
    recovered, report = fresh_recovery(rig)
    assert not report.state_loaded
    assert report.records_replayed == 0
    assert recovered.readdir("/") == []


def test_recovery_duration_is_fast(rig):
    """Runtime self-recovery is near-instantaneous (§III-E)."""
    def workload():
        fd = yield from rig.fs.open("/ckpt.dat", create=True)
        for _ in range(32):
            yield from rig.fs.write(fd, MiB(1))
        yield from rig.fs.close(fd)

    rig.run(workload())
    _recovered, report = fresh_recovery(rig)
    assert report.duration < 0.1  # well under the paper's ~0.5s/instance
