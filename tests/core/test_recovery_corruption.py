"""Recovery behaviour under corruption and torn writes."""

import pytest

from repro.core.data_plane import DataPlane
from repro.core.microfs.fs import MicroFS
from repro.core.microfs.oplog import LogRecord
from repro.core.microfs.recovery import recover
from repro.errors import RecoveryError
from repro.nvme.commands import Payload



def attempt_recovery(rig):
    data_plane = DataPlane(rig.env, rig.transport, rig.namespace.nsid, rig.config)

    def scenario():
        return (yield from recover(rig.env, rig.config, data_plane, rig.partition))

    return rig.run(scenario())


def test_zeroed_superblock_means_fresh_fs(rig):
    """All-zero superblock region (never checkpointed) -> no state load."""
    _fs, report = attempt_recovery(rig)
    assert not report.state_loaded


def test_bad_superblock_magic_ignored(rig):
    """Garbage in the superblock slot is treated as 'no checkpoint' —
    the magic check rejects it rather than misparsing."""
    rig.namespace.store.write(
        rig.fs._sb_offset, Payload.of_bytes(b"\xde\xad\xbe\xef" * 1024)
    )
    _fs, report = attempt_recovery(rig)
    assert not report.state_loaded


def test_corrupt_state_blob_raises(rig):
    def workload():
        fd = yield from rig.fs.open("/f", create=True)
        yield from rig.fs.close(fd)
        yield from rig.fs.checkpoint_state()

    rig.run(workload())
    # Smash the state slot the superblock points at.
    superblock_raw = rig.namespace.store.read_bytes(rig.fs._sb_offset, 4096)
    superblock = MicroFS.decode_superblock(superblock_raw)
    slot_bytes = rig.config.state_region_bytes // 2
    slot_offset = rig.fs._state_offset + superblock["slot"] * slot_bytes
    rig.namespace.store.write(slot_offset, Payload.of_bytes(b"\x13\x37" * 64))
    with pytest.raises(RecoveryError):
        attempt_recovery(rig)


def test_corrupt_log_slot_raises(rig):
    def workload():
        fd = yield from rig.fs.open("/f", create=True)
        yield from rig.fs.close(fd)

    rig.run(workload())
    # A non-empty, non-magic slot in the log region is corruption.
    rig.namespace.store.write(
        rig.fs._log_offset, Payload.of_bytes(b"\x01" * 64)
    )
    with pytest.raises(RecoveryError):
        attempt_recovery(rig)


def test_stale_epoch_records_ignored(rig):
    """Records from before the last state checkpoint (old epoch) that
    still sit in the log region must not replay."""
    def workload():
        for i in range(3):
            fd = yield from rig.fs.open(f"/old{i}", create=True)
            yield from rig.fs.close(fd)
        yield from rig.fs.checkpoint_state()
        fd = yield from rig.fs.open("/new", create=True)
        yield from rig.fs.close(fd)

    rig.run(workload())
    _fs, report = attempt_recovery(rig)
    # Only the post-checkpoint create (+ its dir write) replays.
    assert report.records_replayed <= 2
    assert _fs.exists("/new")
    for i in range(3):
        assert _fs.exists(f"/old{i}")  # via the state checkpoint


def test_decode_stream_rejects_garbage():
    with pytest.raises(RecoveryError):
        LogRecord.decode_stream(b"\x55" * 128)
