"""Tests for rename and partial truncate, including crash recovery."""

import pytest

from repro.core.data_plane import DataPlane
from repro.core.microfs.recovery import recover
from repro.errors import FileExists, FileNotFound, InvalidArgument
from repro.units import KiB, MiB



def fresh_recovery(rig):
    data_plane = DataPlane(rig.env, rig.transport, rig.namespace.nsid, rig.config)

    def scenario():
        return (yield from recover(rig.env, rig.config, data_plane, rig.partition))

    return rig.run(scenario())


def test_rename_file(rig):
    def scenario():
        fd = yield from rig.fs.open("/tmp.dat", create=True)
        yield from rig.fs.write(fd, b"publish me")
        yield from rig.fs.close(fd)
        yield from rig.fs.rename("/tmp.dat", "/final.dat")

    rig.run(scenario())
    assert not rig.fs.exists("/tmp.dat")
    assert rig.fs.stat("/final.dat").size == 10


def test_rename_preserves_content(rig):
    def scenario():
        fd = yield from rig.fs.open("/a", create=True)
        yield from rig.fs.write(fd, b"content!")
        yield from rig.fs.close(fd)
        yield from rig.fs.rename("/a", "/b")
        fd = yield from rig.fs.open("/b")
        pieces = yield from rig.fs.read(fd, 8)
        yield from rig.fs.close(fd)
        return b"".join(p.data for p in pieces)

    assert rig.run(scenario()) == b"content!"


def test_rename_across_directories(rig):
    def scenario():
        yield from rig.fs.mkdir("/src")
        yield from rig.fs.mkdir("/dst")
        fd = yield from rig.fs.open("/src/f", create=True)
        yield from rig.fs.close(fd)
        yield from rig.fs.rename("/src/f", "/dst/g")

    rig.run(scenario())
    assert rig.fs.readdir("/src") == []
    assert rig.fs.readdir("/dst") == ["g"]


def test_rename_directory_rekeys_subtree(rig):
    def scenario():
        yield from rig.fs.mkdir("/old")
        fd = yield from rig.fs.open("/old/child", create=True)
        yield from rig.fs.close(fd)
        yield from rig.fs.rename("/old", "/new")

    rig.run(scenario())
    assert rig.fs.exists("/new/child")
    assert not rig.fs.exists("/old/child")


def test_rename_to_existing_raises(rig):
    def scenario():
        for name in ("/a", "/b"):
            fd = yield from rig.fs.open(name, create=True)
            yield from rig.fs.close(fd)
        yield from rig.fs.rename("/a", "/b")

    with pytest.raises(FileExists):
        rig.run(scenario())


def test_rename_missing_source_raises(rig):
    def scenario():
        yield from rig.fs.rename("/ghost", "/x")

    with pytest.raises(FileNotFound):
        rig.run(scenario())


def test_rename_survives_recovery(rig):
    def scenario():
        fd = yield from rig.fs.open("/a", create=True)
        yield from rig.fs.write(fd, MiB(1))
        yield from rig.fs.close(fd)
        yield from rig.fs.rename("/a", "/b")

    rig.run(scenario())
    recovered, _report = fresh_recovery(rig)
    assert not recovered.exists("/a")
    assert recovered.stat("/b").size == MiB(1)
    assert recovered.stat("/b").blocks == rig.fs.stat("/b").blocks


def test_partial_truncate_frees_tail_blocks(rig):
    block = rig.config.effective_block_bytes

    def scenario():
        fd = yield from rig.fs.open("/f", create=True)
        yield from rig.fs.write(fd, 10 * block)
        yield from rig.fs.close(fd)
        yield from rig.fs.truncate("/f", 3 * block + 100)

    rig.run(scenario())
    inode = rig.fs.stat("/f")
    assert inode.size == 3 * block + 100
    assert len(inode.blocks) == 4  # ceil(size / block)


def test_truncate_grow_rejected(rig):
    def scenario():
        fd = yield from rig.fs.open("/f", create=True)
        yield from rig.fs.write(fd, KiB(32))
        yield from rig.fs.close(fd)
        yield from rig.fs.truncate("/f", MiB(1))

    with pytest.raises(InvalidArgument):
        rig.run(scenario())


def test_truncate_survives_recovery(rig):
    block = rig.config.effective_block_bytes

    def scenario():
        fd = yield from rig.fs.open("/f", create=True)
        yield from rig.fs.write(fd, 8 * block)
        yield from rig.fs.close(fd)
        yield from rig.fs.truncate("/f", 2 * block)
        # Reuse the freed blocks: allocation stays deterministic.
        fd = yield from rig.fs.open("/g", create=True)
        yield from rig.fs.write(fd, 4 * block)
        yield from rig.fs.close(fd)

    rig.run(scenario())
    recovered, _ = fresh_recovery(rig)
    assert recovered.stat("/f").size == 2 * block
    assert recovered.stat("/f").blocks == rig.fs.stat("/f").blocks
    assert recovered.stat("/g").blocks == rig.fs.stat("/g").blocks


def test_shim_rename_truncate():
    from repro.bench.fleet import MicroFSFleet

    fleet = MicroFSFleet(1, partition_bytes=MiB(256))
    shim = fleet.clients[0]

    def scenario():
        fd = yield from shim.open("/t", "w")
        yield from shim.write(fd, KiB(64))
        yield from shim.close(fd)
        yield from shim.rename("/t", "/u")
        yield from shim.truncate("/u", KiB(16))

    fleet.env.run_until_complete(fleet.env.process(scenario()))
    assert shim.stat("/u").size == KiB(16)
