"""End-to-end tests: scheduler -> balancer -> runtime -> CoMD over NVMf."""

import pytest

from repro.apps import CoMDConfig, CoMDProxy, Deployment
from repro.core.config import RuntimeConfig
from repro.errors import PermissionDenied
from repro.metrics import coefficient_of_variation, efficiency, summarize_stats
from repro.units import GiB, MiB


def small_config():
    return RuntimeConfig(log_region_bytes=MiB(1), state_region_bytes=MiB(16))


def test_full_stack_comd_small():
    dep = Deployment(seed=1, deterministic_devices=True)
    job, plan = dep.submit("comd-mini", nprocs=8, devices=2, bytes_per_device=GiB(8))
    proxy = CoMDProxy(CoMDConfig(atoms_per_rank=2000, checkpoints=3))
    mpi_job = dep.run_job(job, plan, proxy.rank_main, config=small_config())
    results = mpi_job.results()
    assert len(results) == 8
    for stats in results:
        assert len(stats.checkpoint_times) == 3
        assert stats.bytes_written == 3 * 2000 * 5120
        assert stats.compute_time > 0


def test_balancer_places_storage_on_partner_domain():
    dep = Deployment(seed=2)
    job, plan = dep.submit("j", nprocs=28, devices=3, bytes_per_device=GiB(4))
    compute_domains = {d.domain_id for d in dep.balancer.job_domains(job)}
    for grant in plan.grants:
        storage_domain = dep.balancer.domain_of_node(grant.node_name)
        assert storage_domain.domain_id not in compute_domains


def test_round_robin_rank_assignment():
    dep = Deployment(seed=3)
    job, plan = dep.submit("j", nprocs=10, devices=4, bytes_per_device=GiB(2))
    assert [plan.rank_to_grant[r] for r in range(10)] == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]
    # Groups partition the ranks.
    all_ranks = sorted(
        r for g in range(4) for r in plan.group_of_grant(g)
    )
    assert all_ranks == list(range(10))


def test_partitions_disjoint_within_namespace():
    dep = Deployment(seed=4)
    job, plan = dep.submit("j", nprocs=8, devices=2, bytes_per_device=GiB(8))
    block = RuntimeConfig().effective_block_bytes
    for g in range(2):
        group = plan.group_of_grant(g)
        windows = []
        for rank in group:
            part = plan.partition_for(rank, block)
            windows.append((part.offset, part.offset + part.nbytes))
        windows.sort()
        for (a0, a1), (b0, b1) in zip(windows, windows[1:]):
            assert a1 <= b0  # no overlap


def test_perfect_load_balance_across_servers():
    """Figure 7(b): NVMe-CR's CoV of per-server load is ~0."""
    dep = Deployment(seed=5, deterministic_devices=True)
    job, plan = dep.submit("comd", nprocs=8, devices=4, bytes_per_device=GiB(4))
    proxy = CoMDProxy(CoMDConfig(atoms_per_rank=2000, checkpoints=2))
    dep.run_job(job, plan, proxy.rank_main, config=small_config())
    loads = [b for b in dep.bytes_per_server() if b > 0]
    assert len(loads) == 4
    assert coefficient_of_variation(loads) < 0.02


def test_checkpoint_efficiency_reasonable_at_small_scale():
    dep = Deployment(seed=6, deterministic_devices=True)
    job, plan = dep.submit("comd", nprocs=28, devices=1, bytes_per_device=GiB(30))
    proxy = CoMDProxy(CoMDConfig(atoms_per_rank=8000, checkpoints=2, compute_jitter=0.0))
    mpi_job = dep.run_job(job, plan, proxy.rank_main, config=small_config())
    row = summarize_stats("nvme-cr", 28, mpi_job.results())
    ssd = dep.ssds[plan.grants[0].node_name]
    eff = efficiency(row.total_bytes, row.checkpoint_time, ssd.spec.write_bandwidth)
    assert eff > 0.80  # near-hardware at full subscription of one SSD


def test_namespace_security_rejects_foreign_job():
    dep = Deployment(seed=7)
    job_a, plan_a = dep.submit("job-a", nprocs=2, devices=1, bytes_per_device=GiB(2))
    job_b, plan_b = dep.submit("job-b", nprocs=2, devices=1, bytes_per_device=GiB(2))
    # Forge a plan whose grant belongs to the other job.
    plan_a.grants[0] = plan_b.grants[0]

    def rank_main(shim, comm):
        yield from comm.barrier()
        return None

    with pytest.raises(PermissionDenied):
        dep.run_job(job_a, plan_a, rank_main, config=small_config())


def test_job_completion_releases_namespaces():
    dep = Deployment(seed=8)
    ssd_free_before = {n: s.free_bytes() for n, s in dep.ssds.items()}
    job, plan = dep.submit("ephemeral", nprocs=4, devices=2, bytes_per_device=GiB(4))
    assert any(
        dep.ssds[n].free_bytes() < ssd_free_before[n] for n in dep.ssds
    )
    dep.scheduler.complete(job)
    for name, ssd in dep.ssds.items():
        assert ssd.free_bytes() == ssd_free_before[name]


def test_restart_reads_back_checkpoints():
    dep = Deployment(seed=9, deterministic_devices=True)
    job, plan = dep.submit("comd", nprocs=4, devices=2, bytes_per_device=GiB(4))
    proxy = CoMDProxy(CoMDConfig(atoms_per_rank=1000, checkpoints=2))

    def rank_main(shim, comm):
        yield from proxy.rank_main(shim, comm)
        stats = yield from proxy.restart_main(shim, comm)
        return stats

    mpi_job = dep.run_job(job, plan, rank_main, config=small_config())
    for stats in mpi_job.results():
        assert stats.bytes_read == 2 * 1000 * 5120


def test_nvmf_remote_vs_local_transport_selected():
    """Compute ranks are remote from storage: transports must be NVMf."""
    dep = Deployment(seed=10)
    job, plan = dep.submit("j", nprocs=2, devices=1, bytes_per_device=GiB(2))

    def rank_main(shim, comm):
        yield from comm.barrier()
        return shim.runtime.data_plane.transport.description

    mpi_job = dep.run_job(job, plan, rank_main, config=small_config())
    for desc in mpi_job.results():
        assert desc.startswith("nvmf:")


def test_multi_ssd_storage_nodes():
    """Storage nodes can carry several SSDs; jobs span them via per-SSD
    NVMf targets."""
    from repro.topology import ClusterSpec, Node, NodeKind, Rack
    from repro.units import GiB as _GiB

    racks = [
        Rack("rc", [Node(f"c{i}", NodeKind.COMPUTE, "rc", "pc", 8, _GiB(16))
                    for i in range(3)]),
        Rack("rs", [Node("s0", NodeKind.STORAGE, "rs", "ps", 8, _GiB(16),
                         ssd_count=3)]),
    ]
    dep = Deployment(seed=30, cluster=ClusterSpec(racks))
    assert len(dep.all_ssds["s0"]) == 3
    assert dep.aggregate_write_bandwidth() == 3 * dep.ssd_spec.write_bandwidth
    # Three jobs each land a namespace; the scheduler spreads by free space.
    names = set()
    for j in range(3):
        job, plan = dep.submit(f"j{j}", nprocs=2, procs_per_node=8,
                               devices=1, bytes_per_device=_GiB(2))

        def rank_main(shim, comm):
            fd = yield from shim.open("/x", "w")
            yield from shim.write(fd, MiB(8))
            yield from shim.close(fd)
            return shim.runtime.data_plane.transport.description

        mpi_job = dep.run_job(job, plan, rank_main, config=small_config())
        names.update(mpi_job.results())
    # Namespaces stay live across jobs, so the free-space heuristic
    # spreads the three jobs over all three devices.
    assert len(names) == 3
