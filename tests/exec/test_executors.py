"""Executor backends: LPT assignment, deterministic merge, bit-identity.

The acceptance property for the execution layer: same seed, same plan ⇒
bit-identical merged results, for any shard count and any backend.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import (
    ExecutionError,
    ExecutionPlan,
    InProcessExecutor,
    ShardedExecutor,
    SimUnit,
    make_executor,
    merge_results,
    run_unit,
)
from repro.exec.executors import assign_units
from repro.exec.merge import merge_spans
from repro.exec.plan import UnitResult
from repro.units import KiB, MiB


def _plan(seeds, steps=4):
    units = [
        SimUnit(index=i, label=f"unit{i}", fn="tests.exec.unitfns:sim_unit",
                params={"seed": seed, "steps": steps}, weight=float(steps))
        for i, seed in enumerate(seeds)
    ]
    return ExecutionPlan(
        title="synthetic", units=units,
        reduce=lambda results: sum(r.payload["sum_delay"] for r in results),
    )


# -- shard assignment ---------------------------------------------------------


def test_assign_units_is_deterministic_lpt():
    units = [SimUnit(index=i, label=f"u{i}", fn="m:f", weight=w)
             for i, w in enumerate([5.0, 1.0, 4.0, 2.0, 2.0, 1.0])]
    buckets = assign_units(units, 2)
    # Heaviest-first onto the lightest shard (5 | 4, then 2->shard1,
    # 2->shard0, 1->shard1, 1->shard0), then plan order per shard.
    assert [[u.index for u in b] for b in buckets] == [[0, 4, 5], [1, 2, 3]]
    assert assign_units(units, 2) == buckets  # pure function of inputs
    # Every unit lands exactly once, for any shard count.
    for shards in (1, 2, 3, 6, 8):
        spread = assign_units(units, shards)
        assert sorted(u.index for b in spread for u in b) == list(range(6))
    with pytest.raises(ValueError):
        assign_units(units, 0)


# -- the bit-identity property ------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    seeds=st.lists(st.integers(0, 2**16), min_size=1, max_size=6),
    shards=st.sampled_from([1, 2, 4]),
)
def test_same_seed_same_merged_hash_for_any_shard_count(seeds, shards):
    """Hypothesis property: seeds fully determine the merged event-stream
    hash; the shard count and backend must not leak into it."""
    reference = InProcessExecutor().execute(_plan(seeds))
    sharded = ShardedExecutor(shards, start_method="inline").execute(_plan(seeds))
    assert sharded.merged.fingerprint == reference.merged.fingerprint
    assert sharded.merged.events_scheduled == reference.merged.events_scheduled
    assert sharded.merged.sim_now == reference.merged.sim_now
    assert sharded.value == reference.value
    assert sharded.merged.metrics.flat() == reference.merged.metrics.flat()
    assert (sharded.merged.timeline.fingerprint()
            == reference.merged.timeline.fingerprint())


def test_process_backend_matches_inline_bit_for_bit():
    """fork workers produce the same merged artefacts as the in-process
    pipeline — the cross-process half of the bit-identity claim."""
    plan = _plan([11, 22, 33, 44], steps=3)
    inline = ShardedExecutor(2, start_method="inline").execute(plan)
    forked = ShardedExecutor(2, start_method="fork").execute(plan)
    assert forked.merged.fingerprint == inline.merged.fingerprint
    assert forked.backend == "sharded/fork"
    assert forked.shards == 2
    assert [r.index for r in forked.results] == [0, 1, 2, 3]
    assert forked.shard_wall_s is not None and len(forked.shard_wall_s) == 2


def test_more_shards_than_units_is_fine():
    plan = _plan([7], steps=2)
    result = ShardedExecutor(4, start_method="fork").execute(plan)
    assert result.merged.fingerprint == InProcessExecutor().execute(
        plan).merged.fingerprint


# -- merged artefacts ---------------------------------------------------------


def test_merged_metrics_and_timeline_roll_up():
    plan = _plan([1, 2, 3], steps=5)
    merged = InProcessExecutor().execute(plan).merged
    flat = merged.metrics.flat()
    assert flat["unit.steps"] == 15  # counters add across units
    assert flat["unit.delay.count"] == 15.0
    assert len(merged.timeline) == 3  # one fault per unit
    assert [r.fault_id for r in merged.timeline] == [0, 1, 2]  # re-issued ids
    summary = merged.summary()
    assert summary["exec.units"] == 3.0
    assert summary["faults_injected"] == 3.0


def test_cross_shard_blast_radius_is_annotated():
    # Units 1 and 3 share a failure domain (seed % 2 == 1 -> rack1/pdu0),
    # and land on different sides of the merge.
    plan = _plan([1, 2, 3, 4], steps=2)
    merged = InProcessExecutor().execute(plan).merged
    assert merged.timeline.cross_shard_domains() == ["rack0/pdu0", "rack1/pdu0"]


def test_merge_spans_offsets_ids_and_orders_globally():
    results = [
        UnitResult(index=0, label="a", payload=None, spans=[
            {"id": 1, "parent": None, "begin": 0.5, "end": 1.0},
            {"id": 2, "parent": 1, "begin": 0.7, "end": 0.9},
        ]),
        UnitResult(index=1, label="b", payload=None, spans=[
            {"id": 1, "parent": None, "begin": 0.1, "end": 0.2},
        ]),
    ]
    merged = merge_spans(results)
    # Globally ordered by (begin, unit, id); unit 1's span ids offset past
    # unit 0's range, parents rewritten consistently.
    assert [(s["unit"], s["id"], s["begin"]) for s in merged] == [
        (1, 3, 0.1), (0, 1, 0.5), (0, 2, 0.7),
    ]
    assert merged[2]["parent"] == 1


def test_merge_rejects_incomplete_results():
    plan = _plan([5, 6])
    only_one = [run_unit(plan.units[0])]
    with pytest.raises(ValueError, match="missing units \\[1\\]"):
        merge_results(plan, only_one)


# -- failure propagation ------------------------------------------------------


def test_worker_failure_raises_with_traceback():
    units = [SimUnit(index=0, label="boom", fn="tests.exec.unitfns:boom",
                     params={"message": "shard exploded"})]
    plan = ExecutionPlan(title="fails", units=units, reduce=lambda rs: rs)
    with pytest.raises(ExecutionError, match="shard exploded"):
        ShardedExecutor(2, start_method="fork").execute(plan)
    # Single-shard and in-process runs surface the raw exception in situ.
    with pytest.raises(RuntimeError, match="shard exploded"):
        ShardedExecutor(1, start_method="fork").execute(plan)
    with pytest.raises(RuntimeError, match="shard exploded"):
        InProcessExecutor().execute(plan)


def test_bad_executor_args_rejected():
    with pytest.raises(ValueError):
        ShardedExecutor(0)
    with pytest.raises(ValueError):
        ShardedExecutor(2, start_method="threads")


def test_make_executor_routing():
    assert isinstance(make_executor(1), InProcessExecutor)
    sharded = make_executor(4)
    assert isinstance(sharded, ShardedExecutor)
    assert sharded.shards == 4 and sharded.start_method == "fork"
    inline = make_executor(1, start_method="inline")
    assert isinstance(inline, ShardedExecutor)


# -- the pinned fig7a baseline through the sharded path -----------------------


def test_fig7a_pinned_baseline_through_sharded_path():
    """The 439-event / 0.06173...s reference workload (see
    tests/obs/test_overhead.py) must survive the plan refactor bit-for-bit
    on every backend."""
    unit = SimUnit(
        index=0, label="fig7a/pin",
        fn="repro.bench.experiments:_fig7a_unit",
        params={"block": KiB(32), "nprocs": 4, "file_bytes": MiB(32),
                "seed": 2},
    )
    plan = ExecutionPlan(title="fig7a-pin", units=[unit],
                         reduce=lambda rs: rs[0].payload)
    in_process = InProcessExecutor().execute(plan)
    forked = ShardedExecutor(2, start_method="fork").execute(plan)
    assert in_process.value["time_s"] == 0.06173009922862135
    assert in_process.merged.events_scheduled == 439
    assert forked.merged.fingerprint == in_process.merged.fingerprint
    assert forked.value["time_s"] == in_process.value["time_s"]
