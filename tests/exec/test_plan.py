"""SimUnit / ExecutionPlan / UnitResult contracts."""

import pytest

from repro.exec import ExecutionPlan, SimUnit, UnitResult
from repro.exec.plan import resolve_unit_fn


def _unit(i, **params):
    return SimUnit(index=i, label=f"u{i}",
                   fn="tests.exec.unitfns:sim_unit", params=params)


def test_unit_fn_spec_must_be_module_colon_function():
    with pytest.raises(ValueError):
        SimUnit(index=0, label="bad", fn="no_colon_here")


def test_resolve_unit_fn_roundtrip_and_errors():
    from tests.exec.unitfns import sim_unit

    assert resolve_unit_fn("tests.exec.unitfns:sim_unit") is sim_unit
    with pytest.raises(ValueError):
        resolve_unit_fn("tests.exec.unitfns:does_not_exist")
    with pytest.raises(ModuleNotFoundError):
        resolve_unit_fn("tests.exec.nope:fn")


def test_plan_requires_contiguous_indices():
    with pytest.raises(ValueError):
        ExecutionPlan(title="t", units=[_unit(0), _unit(2)],
                      reduce=lambda rs: rs)
    plan = ExecutionPlan(title="t", units=[_unit(0), _unit(1)],
                         reduce=lambda rs: rs)
    assert [u.index for u in plan.units] == [0, 1]


def test_fingerprint_ignores_shard_and_wall_clock():
    base = dict(index=3, label="u3", payload={"x": 1.5}, sim_now=2.0,
                events_scheduled=17, metrics={"m": {"kind": "counter"}},
                spans=[{"id": 1, "begin": 0.0}], timeline=[])
    a = UnitResult(shard=0, wall_s=0.1, **base)
    b = UnitResult(shard=7, wall_s=99.0, **base)
    assert a.fingerprint() == b.fingerprint()
    c = UnitResult(shard=0, wall_s=0.1, **{**base, "events_scheduled": 18})
    assert c.fingerprint() != a.fingerprint()


def test_fingerprint_is_stable_across_processes_not_ids():
    # default=repr canonicalisation: equal values hash equal even when
    # rebuilt from scratch (fresh dicts, fresh floats).
    def build():
        return UnitResult(index=0, label="u", payload={"v": [1.0, 2.5]},
                          sim_now=1.0, events_scheduled=5)

    assert build().fingerprint() == build().fingerprint()
