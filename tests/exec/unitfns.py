"""Picklable unit functions for the exec-layer tests.

These live in their own importable module (not a test file) because
:class:`repro.exec.SimUnit` names its function by ``module:function``
import path and worker processes re-resolve it.
"""

import numpy as np

from repro.faults.model import BlastRadius, NodeCrash
from repro.faults.timeline import FaultTimeline
from repro.obs.context import attach
from repro.sim import Environment


def sim_unit(seed: int, steps: int) -> dict:
    """A tiny seeded simulation exercising every harvested artefact:
    metrics, spans (when tracing), the event count, and a timeline."""
    env = Environment()
    ctx = attach(env, label=f"unit-seed{seed}")
    rng = np.random.default_rng(seed)
    delays = [float(d) for d in rng.random(steps)]

    def proc():
        for delay in delays:
            yield env.timeout(delay)
            ctx.metrics.counter("unit.steps").add(1)
            ctx.metrics.histogram("unit.delay", unit="s").observe(delay)

    env.process(proc())
    env.run()

    timeline = FaultTimeline()
    rec = timeline.record(
        NodeCrash(target=f"node{seed % 3}"),
        at=env.now / 2,
        radius=BlastRadius(nodes=(f"node{seed % 3}",),
                           domains=(f"rack{seed % 2}/pdu0",)),
    )
    timeline.mark_recovered(rec, at=env.now, ranks_restarted=1)
    return {
        "sum_delay": sum(delays),
        "now": env.now,
        "_timeline": timeline.to_records(),
    }


def boom(message: str) -> dict:
    """A unit that always fails; exercises worker error propagation."""
    raise RuntimeError(message)
