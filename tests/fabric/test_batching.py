"""Tests for doorbell batching: one fabric round trip per batch."""

import numpy as np
import pytest

from repro.core.config import RuntimeConfig
from repro.core.data_plane import DataPlane
from repro.fabric import (
    FabricTransport,
    NVMfInitiator,
    NVMfTarget,
    RdmaFabric,
    edr_infiniband,
)
from repro.nvme import SSD, Payload
from repro.obs.context import attach
from repro.obs.export import span_count
from repro.sim import Environment
from repro.topology import NetworkTopology, paper_testbed
from repro.units import GiB, KiB, MiB

from tests.conftest import deterministic_spec


@pytest.fixture
def remote():
    env = Environment()
    topo = NetworkTopology(paper_testbed())
    fabric = RdmaFabric(topo, edr_infiniband(), env=env)
    ssd = SSD(env, deterministic_spec(), "ssd-stor00",
              rng=np.random.default_rng(0))
    ns = ssd.create_namespace(GiB(8))
    target = NVMfTarget(env, "stor00", ssd)
    session = NVMfInitiator(env, "comp00", fabric).connect(target)
    return env, ssd, ns, session


def _chunks(n, size, synthetic=True):
    if synthetic:
        return [(i * size, Payload.synthetic(f"c{i}", size)) for i in range(n)]
    return [(i * size, Payload.of_bytes(bytes([i % 251]) * size))
            for i in range(n)]


def test_batch_uses_single_round_trip(remote):
    env, ssd, ns, session = remote
    ctx = attach(env, tracing=True)
    env.run_until_complete(
        session.write_batch(ns.nsid, _chunks(4, MiB(1)), KiB(32)))
    assert span_count(ctx, name="nvmf.rtt") == 1
    assert session.counters.get("batches") == 1
    assert ssd.counters.get("bytes_written") == MiB(4)


def test_unbatched_writes_pay_one_round_trip_each(remote):
    env, ssd, ns, session = remote
    ctx = attach(env, tracing=True)

    def scenario():
        for offset, payload in _chunks(4, MiB(1)):
            yield session.write(ns.nsid, offset, payload, KiB(32))

    env.run_until_complete(env.process(scenario()))
    assert span_count(ctx, name="nvmf.rtt") == 4
    assert ssd.counters.get("bytes_written") == MiB(4)


def test_batch_merges_adjacent_real_chunks(remote):
    env, ssd, ns, session = remote
    env.run_until_complete(
        session.write_batch(ns.nsid, _chunks(4, KiB(4), synthetic=False),
                            KiB(32)))
    # Adjacent real chunks fuse into one extent; read-back is intact.
    assert ns.store.extent_count() == 1
    want = b"".join(bytes([i % 251]) * KiB(4) for i in range(4))
    assert ns.store.read_bytes(0, KiB(16)) == want


def test_batch_keeps_synthetic_identity(remote):
    env, ssd, ns, session = remote
    env.run_until_complete(
        session.write_batch(ns.nsid, _chunks(3, MiB(1)), KiB(32)))
    pieces = ns.store.read(0, MiB(3))
    assert [p.payload.tag for p in pieces] == ["c0", "c1", "c2"]


def test_batch_counts_commands_per_merged_extent(remote):
    env, ssd, ns, session = remote
    env.run_until_complete(
        session.write_batch(ns.nsid, _chunks(2, MiB(1)), KiB(32)))
    assert session.counters.get("commands") == 2 * (MiB(1) // KiB(32))
    assert session.counters.get("bytes") == MiB(2)


def _fabric_plane(batching):
    env = Environment()
    topo = NetworkTopology(paper_testbed())
    fabric = RdmaFabric(topo, edr_infiniband(), env=env)
    ssd = SSD(env, deterministic_spec(), "ssd-stor00",
              rng=np.random.default_rng(0))
    ns = ssd.create_namespace(GiB(8))
    target = NVMfTarget(env, "stor00", ssd)
    session = NVMfInitiator(env, "comp00", fabric).connect(target)
    config = RuntimeConfig(max_batch_bytes=MiB(1), batching=batching)
    dp = DataPlane(env, FabricTransport(session), ns.nsid, config)
    return env, ssd, session, dp


@pytest.mark.parametrize("batching", [False, True])
def test_dataplane_round_trips_at_equal_payload(batching):
    """The acceptance property: batching reduces nvmf.rtt span counts at
    equal payload bytes."""
    env, ssd, session, dp = _fabric_plane(batching)
    ctx = attach(env, tracing=True)
    env.run_until_complete(env.process(
        dp.write_runs([(0, Payload.synthetic("ckpt", MiB(4)))])))
    assert ssd.counters.get("bytes_written") == MiB(4)
    rtts = span_count(ctx, name="nvmf.rtt")
    if batching:
        assert rtts == 1
        assert session.counters.get("batches") == 1
    else:
        assert rtts == 4  # one per 1 MiB chunk
        assert session.counters.get("batches") == 0


def test_dataplane_batching_off_by_default():
    assert RuntimeConfig().batching is False
    assert RuntimeConfig().inflight_window_bytes is None
