"""Tests for the RDMA model and the NVMf target/initiator pair."""

import numpy as np
import pytest

from repro.errors import FabricError
from repro.fabric import (
    FabricTransport,
    LocalPCIeTransport,
    NVMfInitiator,
    NVMfTarget,
    RdmaFabric,
    edr_infiniband,
)
from repro.nvme import SSD, Payload, SSDSpec, intel_p4800x
from repro.sim import Environment
from repro.topology import NetworkTopology, paper_testbed
from repro.units import GiB, KiB, MiB


def quiet_spec():
    base = intel_p4800x()
    return SSDSpec(
        model=base.model, capacity_bytes=base.capacity_bytes,
        write_bandwidth=base.write_bandwidth, read_bandwidth=base.read_bandwidth,
        per_command_cost=base.per_command_cost, flush_cost=base.flush_cost,
        arbitration_beta=0.0,
    )


@pytest.fixture
def setup():
    env = Environment()
    topo = NetworkTopology(paper_testbed())
    fabric = RdmaFabric(topo, edr_infiniband())
    ssd = SSD(env, quiet_spec(), "ssd-stor00", rng=np.random.default_rng(0))
    ns = ssd.create_namespace(GiB(32))
    target = NVMfTarget(env, "stor00", ssd)
    return env, fabric, ssd, ns, target


def test_rdma_latency_model():
    topo = NetworkTopology(paper_testbed())
    fabric = RdmaFabric(topo, edr_infiniband())
    assert fabric.one_way_latency("comp00", "comp00") == 0.0
    same_rack = fabric.one_way_latency("comp00", "comp01")
    cross_rack = fabric.one_way_latency("comp00", "stor00")
    assert cross_rack > same_rack > 0
    assert fabric.round_trip("comp00", "stor00") == pytest.approx(2 * cross_rack)


def test_connect_and_write_roundtrip(setup):
    env, fabric, ssd, ns, target = setup
    initiator = NVMfInitiator(env, "comp00", fabric)
    session = initiator.connect(target)
    assert not session.is_local
    assert target.sessions == 1

    def proc():
        yield session.write(ns.nsid, 0, Payload.of_bytes(b"r" * 4096), KiB(32))
        result = yield session.read(ns.nsid, 0, 4096, KiB(32))
        return result.extra["extents"][0].payload.data

    data = env.run_until_complete(env.process(proc()))
    assert data == b"r" * 4096


def test_session_reuse(setup):
    env, fabric, ssd, ns, target = setup
    initiator = NVMfInitiator(env, "comp00", fabric)
    s1 = initiator.connect(target)
    s2 = initiator.connect(target)
    assert s1 is s2
    assert target.sessions == 1


def test_disconnect_rejects_io(setup):
    env, fabric, ssd, ns, target = setup
    initiator = NVMfInitiator(env, "comp00", fabric)
    session = initiator.connect(target)
    session.disconnect()
    with pytest.raises(FabricError):
        session.write(ns.nsid, 0, Payload.of_bytes(b"x" * 4096), KiB(32))
    assert target.sessions == 0


def test_remote_overhead_is_small_for_bulk_writes(setup):
    """The Figure 8(a) property: NVMf adds < 3.5% for checkpoint writes."""
    env, fabric, ssd, ns, target = setup
    nbytes = MiB(512)

    def local():
        result = yield ssd.write(ns.nsid, 0, Payload.synthetic("l", nbytes), MiB(1))
        return result.latency

    local_latency = env.run_until_complete(env.process(local()))

    initiator = NVMfInitiator(env, "comp00", fabric)
    session = initiator.connect(target)

    def remote():
        t0 = env.now
        yield session.write(ns.nsid, 0, Payload.synthetic("r", nbytes), MiB(1))
        return env.now - t0

    remote_latency = env.run_until_complete(env.process(remote()))
    overhead = remote_latency / local_latency - 1.0
    assert 0.0 <= overhead < 0.035


def test_local_session_has_zero_fabric_latency(setup):
    env, fabric, ssd, ns, target = setup
    initiator = NVMfInitiator(env, "stor00", fabric)  # co-located
    session = initiator.connect(target)
    assert session.is_local


def test_transports_share_interface(setup):
    env, fabric, ssd, ns, target = setup
    local = LocalPCIeTransport(env, ssd)
    remote = FabricTransport(NVMfInitiator(env, "comp00", fabric).connect(target))
    for transport in (local, remote):
        def proc(t=transport):
            yield t.write(ns.nsid, 0, Payload.of_bytes(b"z" * 4096), KiB(32))
            result = yield t.read(ns.nsid, 0, 4096, KiB(32))
            return result.extra["extents"][0].payload.data

        assert env.run_until_complete(env.process(proc())) == b"z" * 4096
    assert local.description.startswith("local-pcie")
    assert remote.description.startswith("nvmf:")


def test_flush_over_fabric(setup):
    env, fabric, ssd, ns, target = setup
    session = NVMfInitiator(env, "comp00", fabric).connect(target)

    def proc():
        t0 = env.now
        yield session.flush(ns.nsid)
        return env.now - t0

    latency = env.run_until_complete(env.process(proc()))
    assert latency >= ssd.spec.flush_cost


def test_counters(setup):
    env, fabric, ssd, ns, target = setup
    session = NVMfInitiator(env, "comp00", fabric).connect(target)

    def proc():
        yield session.write(ns.nsid, 0, Payload.synthetic("x", MiB(2)), KiB(32))

    env.run_until_complete(env.process(proc()))
    assert session.counters.get("bytes") == MiB(2)
    assert session.counters.get("commands") == 64
    assert target.counters.get("bytes") == MiB(2)
