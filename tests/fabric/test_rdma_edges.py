"""Edge-case tests for the RDMA spec and NVMf session caps."""

import numpy as np
import pytest

from repro.errors import FabricError
from repro.fabric import NVMfInitiator, NVMfTarget, RdmaFabric, RdmaSpec, edr_infiniband
from repro.nvme import SSD, Payload
from repro.sim import Environment
from repro.topology import NetworkTopology, paper_testbed
from repro.units import GiB, MiB

from tests.conftest import deterministic_spec


def test_rdma_spec_validation():
    with pytest.raises(FabricError):
        RdmaSpec("bad", link_bandwidth=0, base_latency=1e-6,
                 per_hop_latency=1e-7, per_message_cpu=1e-7)


def test_edr_line_rate():
    spec = edr_infiniband()
    assert spec.link_bandwidth == pytest.approx(12.5e9)


def test_qd1_rtt_cap_limits_small_command_remote_stream():
    """A remote session streaming tiny commands run-to-completion is
    capped at command_size/rtt — the reason hugeblocks matter remotely."""
    env = Environment()
    topo = NetworkTopology(paper_testbed())
    fabric = RdmaFabric(topo, edr_infiniband())
    ssd = SSD(env, deterministic_spec(), "s", rng=np.random.default_rng(0))
    ns = ssd.create_namespace(GiB(4))
    target = NVMfTarget(env, "stor00", ssd)
    session = NVMfInitiator(env, "comp00", fabric).connect(target)
    rtt = fabric.round_trip("comp00", "stor00")

    def proc(command_size):
        t0 = env.now
        yield session.write(ns.nsid, 0, Payload.synthetic("x", MiB(16)), command_size)
        return env.now - t0

    small = env.run_until_complete(env.process(proc(4096)))
    large = env.run_until_complete(env.process(proc(MiB(1))))
    # The binding QD-1 ceiling is min(cs/rtt, cs/access_latency); with
    # ~1.8 us fabric rtt and 10 us media latency, the device term wins:
    qd1 = 4096 / max(rtt, ssd.spec.access_latency)
    assert small == pytest.approx(MiB(16) / qd1, rel=0.15)
    assert large < small / 5


def test_disconnected_initiator_reconnects():
    env = Environment()
    topo = NetworkTopology(paper_testbed())
    fabric = RdmaFabric(topo, edr_infiniband())
    ssd = SSD(env, deterministic_spec(), "s", rng=np.random.default_rng(0))
    ssd.create_namespace(GiB(1))
    target = NVMfTarget(env, "stor00", ssd)
    initiator = NVMfInitiator(env, "comp00", fabric)
    first = initiator.connect(target)
    initiator.disconnect_all()
    assert not first.connected
    second = initiator.connect(target)
    assert second is not first
    assert second.connected
    assert target.sessions == 1
