"""Injector-driven consensus faults: LeaderKill and NetworkPartition."""

from repro.consensus import RaftGroup
from repro.faults import FaultInjector, FaultKind, LeaderKill, NetworkPartition
from repro.faults.model import blast_radius
from repro.sim.engine import Environment
from repro.sim.rng import RngHub
from repro.units import ms

MEMBERS = ["cn0", "cn1", "cn2"]


def make_group(seed=5):
    env = Environment()
    group = RaftGroup(env, MEMBERS, RngHub(seed))
    group.start()
    return env, group


def settle(env, group, until):
    def body():
        yield env.timeout(until)

    proc = env.process(body())
    env.run_until_complete(proc)
    group.stop()
    env.run()


def test_consensus_fault_kinds_have_empty_blast_radius():
    # They target the replicated control plane, not cluster hardware.
    for fault in (LeaderKill("cp"), NetworkPartition("cp")):
        radius = blast_radius(fault)
        assert not radius.nodes and not radius.ssds and not radius.targets


def test_leader_kill_crashes_leader_and_repair_revives_it():
    env, group = make_group()
    injector = FaultInjector(env, seed=1)
    injector.attach_consensus(group)
    injector.at(ms(150), LeaderKill("cp"), repair_after=ms(100))
    injector.start()

    settle(env, group, ms(600))

    records = injector.timeline.records
    assert [r.kind for r in records] == [FaultKind.LEADER_KILL.value]
    killed = [m for m in MEMBERS if group.nodes[m].trace and any(
        t[0] == "crash" for t in group.nodes[m].trace
    )]
    assert len(killed) == 1
    victim = group.nodes[killed[0]]
    assert not victim.crashed  # repaired: revived after repair_after
    # A new leader took over, and the revived member converged on it.
    assert sum(len(n.terms_led) for n in group.nodes.values()) >= 2
    assert len(set(group.digests().values())) == 1


def test_partition_defaults_to_worst_minority_cut():
    env, group = make_group()
    injector = FaultInjector(env, seed=1)
    injector.attach_consensus(group)
    injector.at(ms(150), NetworkPartition("cp"), repair_after=ms(100))
    injector.start()

    cuts = []

    def capture(record, fault, radius):
        cuts.append(frozenset(group.fabric._isolated))

    injector.subscribe(capture)
    settle(env, group, ms(600))

    # The default cut isolates the leader plus enough followers to stay
    # a minority: for 3 members, exactly the leader alone.
    assert len(cuts) == 1 and len(cuts[0]) == 1
    assert not group.fabric.is_partitioned()  # healed by repair
    # The majority side elected around the cut; replicas re-converged.
    assert sum(len(n.terms_led) for n in group.nodes.values()) >= 2
    assert len(set(group.digests().values())) == 1


def test_partition_with_explicit_members():
    env, group = make_group()
    injector = FaultInjector(env, seed=1)
    injector.attach_consensus(group)
    injector.at(
        ms(150), NetworkPartition("cp", members=("cn2",)),
        repair_after=ms(100),
    )
    injector.start()

    def body():
        yield env.timeout(ms(170))
        assert group.fabric._isolated == frozenset({"cn2"})
        yield env.timeout(ms(430))

    proc = env.process(body())
    env.run_until_complete(proc)
    group.stop()
    env.run()
    assert not group.fabric.is_partitioned()


def test_consensus_faults_without_wiring_are_timeline_only():
    env = Environment()
    injector = FaultInjector(env, seed=1)
    injector.at(ms(10), LeaderKill("cp"), repair_after=ms(10))
    injector.at(ms(20), NetworkPartition("cp"), repair_after=ms(10))
    injector.start()
    env.run()
    assert len(injector.timeline.records) == 2  # recorded, nothing struck


def test_interleaved_kills_and_partitions_recover():
    """The failover experiment's schedule shape: alternating strikes,
    each repaired before the next, with live proposals throughout."""
    env, group = make_group()
    injector = FaultInjector(env, seed=1)
    injector.attach_consensus(group)
    for k in range(4):
        fault = LeaderKill("cp") if k % 2 == 0 else NetworkPartition("cp")
        injector.at(ms(100) + k * ms(200), fault, repair_after=ms(80))
    injector.start()

    acked = []

    def client():
        yield from group.wait_leader(timeout=1.0)
        for i in range(16):
            yield env.timeout(ms(50))
            yield from group.propose(("meta.set", f"/k{i}", i))
            acked.append(i)
        yield env.timeout(ms(300))

    proc = env.process(client())
    env.run_until_complete(proc)
    group.stop()
    env.run()

    assert acked == list(range(16))
    assert len(set(group.digests().values())) == 1
    live = [m for m in MEMBERS if not group.nodes[m].crashed]
    assert group.leader() in live
