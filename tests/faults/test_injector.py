"""Injector determinism, physical effects, and the hypothesis property:
identical seeds produce identical fault timelines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.deployment import Deployment
from repro.errors import FabricError
from repro.faults.hazard import HazardSpec, campaign_failure_times, draw_arrival_times
from repro.faults.injector import FaultInjector
from repro.faults.model import (
    LinkDegrade,
    NodeCrash,
    NVMfTargetDeath,
    SSDPowerLoss,
)


def small_deployment(seed=0):
    return Deployment(
        seed=seed, storage_nodes=2, compute_nodes=2, deterministic_devices=True
    )


# -- hazard draws -----------------------------------------------------------


def test_hazard_draws_are_deterministic_and_sorted():
    spec = HazardSpec("node", mtbf=50.0)
    a = draw_arrival_times(7, spec, "comp00", horizon=500.0)
    b = draw_arrival_times(7, spec, "comp00", horizon=500.0)
    assert a == b
    assert a == sorted(a)
    assert all(0 < t <= 500.0 for t in a)


def test_hazard_streams_are_independent_per_component():
    spec = HazardSpec("node", mtbf=50.0)
    a = draw_arrival_times(7, spec, "comp00", horizon=500.0)
    b = draw_arrival_times(7, spec, "comp01", horizon=500.0)
    assert a != b


def test_weibull_shape_changes_the_law_but_not_determinism():
    exp = HazardSpec("ssd", mtbf=100.0)
    wei = HazardSpec("ssd", mtbf=100.0, shape=2.0)
    assert draw_arrival_times(3, exp, "s0", 1000.0) != draw_arrival_times(
        3, wei, "s0", 1000.0
    )
    assert draw_arrival_times(3, wei, "s0", 1000.0) == draw_arrival_times(
        3, wei, "s0", 1000.0
    )


def test_campaign_failure_times_ignore_the_system_under_test():
    # CRN: keyed by (seed, mtbf, rank) only — any two systems compared
    # under one seed see the identical strike sequence.
    assert campaign_failure_times(9, 60.0, 600.0) == campaign_failure_times(
        9, 60.0, 600.0
    )
    assert campaign_failure_times(9, 60.0, 600.0, rank=1) != campaign_failure_times(
        9, 60.0, 600.0, rank=0
    )


# -- physical effects -------------------------------------------------------


def test_injection_cuts_ssd_power_and_repair_restores():
    dep = small_deployment()
    inj = FaultInjector.for_deployment(dep, seed=1)
    inj.at(1.0, SSDPowerLoss("stor00"), repair_after=2.0)
    inj.start()
    dep.env.run()
    ssd = dep.ssds["stor00"]
    assert ssd.powered  # repaired by the end
    rec = inj.timeline.records[0]
    assert rec.injected_at == pytest.approx(1.0)
    assert rec.repaired_at == pytest.approx(3.0)


def test_target_death_breaks_sessions_and_blocks_connects():
    dep = small_deployment()
    inj = FaultInjector.for_deployment(dep, seed=1)
    target = dep.targets["stor01"][0]
    inj.at(0.5, NVMfTargetDeath("stor01"))
    inj.start()
    dep.env.run()
    assert not target.alive
    from repro.fabric.nvmf import NVMfInitiator

    initiator = NVMfInitiator(dep.env, "comp00", dep.fabric)
    with pytest.raises(FabricError, match="dead"):
        initiator.connect(target)


def test_link_degrade_stretches_latency_and_caps_bandwidth():
    dep = small_deployment()
    base = dep.fabric.one_way_latency("comp00", "stor00")
    inj = FaultInjector.for_deployment(dep, seed=1)
    inj.at(0.0, LinkDegrade("comp00", factor=0.25), repair_after=5.0)
    inj.start()
    dep.env.run_until_complete(dep.env.process(_sleep(dep.env, 1.0)))
    assert dep.fabric.one_way_latency("comp00", "stor00") == pytest.approx(4 * base)
    assert dep.fabric.payload_cap("comp00", "stor00") == pytest.approx(
        dep.fabric.spec.link_bandwidth / 4
    )
    dep.env.run()
    assert dep.fabric.one_way_latency("comp00", "stor00") == pytest.approx(base)


def test_node_crash_marks_scheduler_node_down_and_up():
    dep = small_deployment()
    inj = FaultInjector.for_deployment(dep, seed=1)
    inj.at(1.0, NodeCrash("comp01"), repair_after=3.0)
    inj.start()
    dep.env.run_until_complete(dep.env.process(_sleep(dep.env, 2.0)))
    assert "comp01" in dep.scheduler.down_nodes()
    assert "comp01" not in dep.scheduler.free_compute_nodes()
    dep.env.run()
    assert "comp01" not in dep.scheduler.down_nodes()
    assert "comp01" in dep.scheduler.free_compute_nodes()


def _sleep(env, t):
    yield env.timeout(t)


# -- determinism ------------------------------------------------------------


def _run_hazard_schedule(seed):
    dep = small_deployment(seed=0)
    inj = FaultInjector.for_deployment(dep, seed=seed)
    inj.arm_hazard(
        HazardSpec("node", mtbf=20.0), ["comp00", "comp01"], horizon=100.0,
        fault_factory=NodeCrash, repair_after=1.0,
    )
    inj.arm_hazard(
        HazardSpec("ssd", mtbf=40.0, shape=1.5), ["stor00"], horizon=100.0,
        fault_factory=SSDPowerLoss, repair_after=0.5,
    )
    inj.start()
    dep.env.run()
    return inj.timeline


def test_planned_schedule_is_stable_under_insertion_order():
    dep = small_deployment()
    inj = FaultInjector.for_deployment(dep, seed=5)
    inj.at(2.0, NodeCrash("comp00"))
    inj.at(1.0, NodeCrash("comp01"))
    inj.at(1.0, SSDPowerLoss("stor00"))
    plan = inj.planned()
    assert [t for t, _ in plan] == [1.0, 1.0, 2.0]
    # Ties keep insertion order.
    assert plan[0][1] == NodeCrash("comp01")
    assert plan[1][1] == SSDPowerLoss("stor00")


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_identical_seeds_produce_identical_timelines(seed):
    one = _run_hazard_schedule(seed)
    two = _run_hazard_schedule(seed)
    assert one.fingerprint() == two.fingerprint()
    assert one.to_json() == two.to_json()


def test_different_seeds_usually_differ():
    assert _run_hazard_schedule(1).fingerprint() != _run_hazard_schedule(2).fingerprint()


def test_timeline_summary_counts_kinds():
    timeline = _run_hazard_schedule(3)
    summary = timeline.summary()
    assert summary["faults_injected"] == len(timeline.records)
    per_kind = sum(v for k, v in summary.items() if k.startswith("faults["))
    assert per_kind == summary["faults_injected"]
