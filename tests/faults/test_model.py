"""Blast-radius derivation for every fault kind."""

import pytest

from repro.faults.model import (
    BlastRadius,
    LinkDegrade,
    NodeCrash,
    NVMfTargetDeath,
    PDUFailure,
    SSDPowerLoss,
    SwitchFailure,
    blast_radius,
)
from repro.topology.cluster import ClusterSpec, Node, NodeKind, Rack, paper_testbed
from repro.topology.failure_domains import derive_failure_domains
from repro.units import GiB


@pytest.fixture(scope="module")
def testbed():
    return paper_testbed()


def mixed_cluster():
    """Two racks, two PDUs each: four failure domains."""
    racks = []
    for r in range(2):
        nodes = []
        for i in range(2):
            nodes.append(
                Node(f"c{r}{i}", NodeKind.COMPUTE, f"r{r}", f"p{r}{i % 2}", 4, GiB(1))
            )
            nodes.append(
                Node(
                    f"s{r}{i}", NodeKind.STORAGE, f"r{r}", f"p{r}{i % 2}",
                    4, GiB(1), ssd_count=1,
                )
            )
        racks.append(Rack(f"r{r}", nodes))
    return ClusterSpec(racks)


def test_compute_node_crash_kills_only_the_host(testbed):
    radius = blast_radius(NodeCrash("comp03"), testbed)
    assert radius.nodes == ("comp03",)
    assert radius.ssds == () and radius.targets == ()
    assert radius.domains == ()  # the compute domain has 15 survivors


def test_storage_node_crash_takes_its_ssds_and_daemon(testbed):
    radius = blast_radius(NodeCrash("stor02"), testbed)
    assert radius.nodes == ("stor02",)
    assert radius.ssds == ("stor02",)
    assert radius.targets == ("stor02",)


def test_ssd_power_loss_spares_the_host(testbed):
    radius = blast_radius(SSDPowerLoss("stor00"), testbed)
    assert radius.ssds == ("stor00",)
    assert radius.nodes == ()


def test_target_death_is_software_only(testbed):
    radius = blast_radius(NVMfTargetDeath("stor01"), testbed)
    assert radius.targets == ("stor01",)
    assert radius.ssds == () and radius.nodes == ()


def test_link_degrade_touches_one_link(testbed):
    radius = blast_radius(LinkDegrade("comp05", factor=0.5), testbed)
    assert radius.links == ("comp05",)
    assert radius.nodes == ()


def test_tor_switch_failure_isolates_the_rack(testbed):
    radius = blast_radius(SwitchFailure("switch-rack-storage"), testbed)
    assert set(radius.nodes) == {f"stor{i:02d}" for i in range(8)}
    assert set(radius.targets) == set(radius.nodes)
    assert radius.ssds == ()  # data on media is safe, just unreachable
    assert radius.domains == ("rack-storage/pdu-storage",)


def test_core_switch_failure_degrades_every_host(testbed):
    radius = blast_radius(SwitchFailure("switch-core"), testbed)
    assert len(radius.links) == len(testbed.nodes)
    assert radius.nodes == ()


def test_pdu_failure_kills_every_colocated_node_and_ssd():
    cluster = mixed_cluster()
    domains = derive_failure_domains(cluster)
    radius = blast_radius(PDUFailure("r0/p00"), cluster, domains)
    # Every node on that rack+PDU pair, compute and storage alike.
    assert set(radius.nodes) == {"c00", "s00"}
    assert set(radius.ssds) == {"s00"}
    assert set(radius.targets) == {"s00"}
    assert radius.domains == ("r0/p00",)


def test_pdu_failure_unknown_domain_raises():
    cluster = mixed_cluster()
    with pytest.raises(KeyError):
        blast_radius(PDUFailure("nope/nope"), cluster)


def test_without_cluster_radius_degrades_to_the_component():
    assert blast_radius(NodeCrash("x")) == BlastRadius(nodes=("x",))
    assert blast_radius(SSDPowerLoss("x")) == BlastRadius(ssds=("x",))
    assert blast_radius(SwitchFailure("x")) == BlastRadius(links=("x",))
    assert blast_radius(PDUFailure("d/p")) == BlastRadius(domains=("d/p",))


def test_faults_are_hashable_and_comparable():
    assert NodeCrash("a") == NodeCrash("a")
    assert len({NodeCrash("a"), NodeCrash("a"), SSDPowerLoss("a")}) == 2
    assert LinkDegrade("a", factor=0.5) != LinkDegrade("a", factor=0.25)
