"""End-to-end recovery orchestration: the acceptance paths.

* a compute-node crash requeues the job and restarts ranks that restore
  from the partner-domain SSD via MicroFS log replay (level 1);
* a fault taking the storage domain's power falls back to the level-2
  Lustre tier;
* the whole run is bit-identical under a fixed seed.

All asserted through the injector's FaultTimeline.
"""

import pytest

from repro.apps.deployment import Deployment
from repro.baselines.lustre import LustreCluster
from repro.faults import (
    FaultInjector,
    FaultKind,
    NodeCrash,
    NVMfTargetDeath,
    PDUFailure,
    RecoveryOrchestrator,
)
from repro.units import MiB


def build(seed=7, pfs_interval=3, lustre=True):
    dep = Deployment(seed=seed, deterministic_devices=True)
    inj = FaultInjector.for_deployment(dep, seed=seed)
    tier2 = LustreCluster(dep.env) if lustre else None
    orch = RecoveryOrchestrator(dep, inj, lustre=tier2, pfs_interval=pfs_interval)
    return dep, inj, orch


def domain_of(dep, node_name):
    node = dep.cluster.node(node_name)
    return f"{node.rack}/{node.pdu}"


def test_compute_crash_requeues_and_replays_from_partner_ssd():
    dep, inj, orch = build()
    inj.at(2.5, NodeCrash("comp00"))
    inj.start()
    report = orch.run(nprocs=2, rounds=5, bytes_per_rank=MiB(4), compute_time=1.0)

    assert report.rounds_completed == 5
    assert report.recoveries == 1
    rec = inj.timeline.records[0]
    assert rec.kind is FaultKind.NODE_CRASH.value or rec.kind == "node-crash"
    assert rec.detected_at is not None and rec.detected_at > rec.injected_at
    # Level-1 path: MicroFS log replay from the granted partner SSD.
    assert rec.recovery_level == 1
    assert rec.records_replayed > 0
    assert rec.bytes_replayed > 0
    assert rec.ranks_restarted == 2
    # The checkpoint came back from a *partner* failure domain: the SSD
    # holding it shares no rack/PDU with the crashed compute node.
    assert rec.restored_from in {g.node_name for g in orch.plan.grants}
    assert domain_of(dep, rec.restored_from) != domain_of(dep, "comp00")
    # Scheduler really requeued: fresh nodes, grants preserved.
    assert orch.job.requeues == 1
    assert "comp00" not in orch.job.compute_nodes
    assert dep.scheduler.grants_of(orch.job) == []  # released on completion


def test_storage_domain_loss_falls_back_to_level2():
    dep, inj, orch = build()
    # Kill the whole storage PDU: every granted SSD loses power.
    inj.at(4.2, PDUFailure("rack-storage/pdu-storage"))
    inj.start()
    report = orch.run(nprocs=2, rounds=6, bytes_per_rank=MiB(4), compute_time=1.0)

    assert report.rounds_completed == 6
    assert report.level2_mode  # finished the run on the PFS tier
    rec = inj.timeline.records[0]
    assert rec.recovery_level == 2
    assert rec.restored_from == "lustre"
    assert rec.bytes_replayed > 0
    summary = inj.timeline.summary()
    assert summary["level2_recoveries"] == 1


def test_storage_loss_without_level2_tier_is_fatal():
    from repro.errors import RecoveryError

    dep, inj, orch = build(lustre=False)
    inj.at(2.2, PDUFailure("rack-storage/pdu-storage"))
    inj.start()
    with pytest.raises(RecoveryError):
        orch.run(nprocs=2, rounds=4, bytes_per_rank=MiB(2))


def test_target_death_respawns_and_recovers_level1():
    dep, inj, orch = build()
    holder = {}
    inj.subscribe(lambda rec, fault, radius: holder.setdefault("rec", rec))
    # Kill the daemon on every storage node so the grant is surely hit.
    for i in range(8):
        inj.at(3.1, NVMfTargetDeath(f"stor{i:02d}"))
    inj.start()
    report = orch.run(nprocs=2, rounds=5, bytes_per_rank=MiB(2), compute_time=1.0)
    assert report.rounds_completed == 5
    recovered = [r for r in inj.timeline.records if r.recovered_at is not None]
    assert recovered and recovered[0].recovery_level == 1
    # Data was on media the whole time; daemons were respawned.
    assert all(t.alive for t in dep.targets[orch.plan.grants[0].node_name])


def test_fault_outside_job_footprint_is_noted_not_recovered():
    dep, inj, orch = build()
    inj.at(2.0, NodeCrash("comp15"))  # job uses comp00/comp01
    inj.start()
    report = orch.run(nprocs=2, rounds=3, bytes_per_rank=MiB(2), compute_time=1.0)
    assert report.rounds_completed == 3
    assert report.recoveries == 0
    assert inj.timeline.records[0].note == "outside job footprint"
    assert inj.timeline.records[0].recovered_at is None


def _timeline_fingerprint(seed):
    dep, inj, orch = build(seed=seed)
    inj.at(2.5, NodeCrash("comp00"))
    inj.at(7.3, NodeCrash("comp01"))
    inj.start()
    report = orch.run(nprocs=2, rounds=6, bytes_per_rank=MiB(4), compute_time=1.0)
    return inj.timeline.fingerprint(), report.wall_time, report.rounds_completed


def test_same_seed_is_bit_identical_across_runs():
    assert _timeline_fingerprint(11) == _timeline_fingerprint(11)


def test_timeline_json_round_trips(tmp_path):
    dep, inj, orch = build()
    inj.at(2.5, NodeCrash("comp00"))
    inj.start()
    orch.run(nprocs=2, rounds=4, bytes_per_rank=MiB(2))
    out = tmp_path / "timeline.json"
    text = inj.timeline.to_json(str(out))
    assert out.read_text() == text
    import json

    payload = json.loads(text)
    assert payload[0]["kind"] == "node-crash"
    assert payload[0]["recovery_level"] == 1
