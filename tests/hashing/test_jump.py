"""Tests for the Lamping-Veach jump consistent hash."""

import numpy as np
import pytest

from repro.hashing import jump_hash, place_names


def test_bucket_in_range():
    for key in range(200):
        assert 0 <= jump_hash(key, 7) < 7


def test_single_bucket_always_zero():
    assert all(jump_hash(k, 1) == 0 for k in range(50))


def test_deterministic_across_calls():
    assert [jump_hash(f"f{i}", 8) for i in range(64)] == [
        jump_hash(f"f{i}", 8) for i in range(64)
    ]


def test_invalid_bucket_count():
    with pytest.raises(ValueError):
        jump_hash(1, 0)


def test_monotone_consistency_property():
    """Growing the bucket count only moves keys INTO the new bucket.

    This is the defining property of jump consistent hash: when going
    from n to n+1 buckets, a key either stays put or moves to bucket n.
    """
    keys = [f"ckpt/rank{i}/step{j}" for i in range(40) for j in range(5)]
    for n in range(1, 12):
        before = place_names(keys, n)
        after = place_names(keys, n + 1)
        for b, a in zip(before, after):
            assert a == b or a == n


def test_string_keys_stable_independent_of_python_hash():
    # blake2b-based folding: a specific key pins the expected bucket, so a
    # regression in the key folding or LCG shows up immediately.
    first = jump_hash("checkpoint-0", 8)
    assert first == jump_hash("checkpoint-0", 8)
    assert 0 <= first < 8


def test_balance_at_high_key_count():
    """At many keys the distribution approaches uniform."""
    buckets = np.bincount(place_names(range(80_000), 8), minlength=8)
    cov = buckets.std() / buckets.mean()
    assert cov < 0.02


def test_imbalance_at_low_key_count():
    """At few keys per bucket the load CoV is large — the Figure 7(b)
    phenomenon that hurts GlusterFS at low process counts."""
    covs = []
    for trial in range(200):
        names = [f"t{trial}-f{i}" for i in range(28)]
        buckets = np.bincount(place_names(names, 8), minlength=8)
        covs.append(buckets.std() / buckets.mean())
    assert np.mean(covs) > 0.3


def test_bucket_count_monotonicity_int_keys():
    """Bucket indices never decrease as the bucket count grows: a key's
    placement is a non-decreasing function of num_buckets (it only ever
    moves INTO the newest bucket)."""
    keys = list(range(300))
    for key in keys:
        last = 0
        for n in range(1, 40):
            bucket = jump_hash(key, n)
            assert bucket >= last
            last = bucket


def test_negative_bucket_count_rejected():
    with pytest.raises(ValueError):
        jump_hash("k", -3)
