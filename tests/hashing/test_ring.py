"""Tests for the vnode hash ring."""

import pytest

from repro.hashing import HashRing


def test_lookup_returns_member():
    ring = HashRing(["a", "b", "c"])
    for key in range(100):
        assert ring.lookup(key) in {"a", "b", "c"}


def test_lookup_deterministic():
    ring1 = HashRing(["s0", "s1", "s2", "s3"])
    ring2 = HashRing(["s0", "s1", "s2", "s3"])
    keys = [f"file{i}" for i in range(200)]
    assert [ring1.lookup(k) for k in keys] == [ring2.lookup(k) for k in keys]


def test_remove_member_moves_only_its_keys():
    ring = HashRing(["a", "b", "c"], vnodes=128)
    keys = [f"k{i}" for i in range(500)]
    before = {k: ring.lookup(k) for k in keys}
    ring.remove("b")
    after = {k: ring.lookup(k) for k in keys}
    for key in keys:
        if before[key] != "b":
            assert after[key] == before[key]
        else:
            assert after[key] in {"a", "c"}


def test_add_member_takes_some_keys():
    ring = HashRing(["a", "b"], vnodes=128)
    keys = [f"k{i}" for i in range(500)]
    before = {k: ring.lookup(k) for k in keys}
    ring.add("c")
    after = {k: ring.lookup(k) for k in keys}
    moved = sum(1 for k in keys if before[k] != after[k])
    assert 0 < moved < len(keys)
    for key in keys:
        if before[key] != after[key]:
            assert after[key] == "c"


def test_empty_members_rejected():
    with pytest.raises(ValueError):
        HashRing([])


def test_invalid_vnodes_rejected():
    with pytest.raises(ValueError):
        HashRing(["a"], vnodes=0)


def test_members_listing():
    ring = HashRing(["x", "y"])
    assert ring.members() == ["x", "y"]
    ring.remove("x")
    assert ring.members() == ["y"]


def test_single_node_ring_owns_everything():
    ring = HashRing(["only"], vnodes=4)
    assert ring.members() == ["only"]
    assert all(ring.lookup(f"k{i}") == "only" for i in range(200))


def test_removing_last_member_empties_ring():
    ring = HashRing(["only"])
    ring.remove("only")
    assert ring.members() == []
    with pytest.raises(ValueError):
        ring.lookup("anything")


def test_invalid_vnode_count_rejected():
    with pytest.raises(ValueError):
        HashRing(["a"], vnodes=0)


def test_remove_absent_member_is_noop():
    ring = HashRing(["a", "b"], vnodes=32)
    keys = [f"k{i}" for i in range(100)]
    before = [ring.lookup(k) for k in keys]
    ring.remove("ghost")
    assert [ring.lookup(k) for k in keys] == before
