"""Tests for the typed I/O envelope and its chunking helpers.

The chunk helpers are the single implementation that replaced the three
copies in ``DataPlane.write_runs`` / ``read_runs`` / ``_chunk``; the
reference implementations here transcribe the legacy loops verbatim so
any divergence in the unified helper shows up directly, and the
pinned-seed test proves the refactored pipeline still produces the
exact event sequence on a chunk-heavy workload.
"""

import numpy as np
import pytest

from repro.core.config import RuntimeConfig
from repro.core.data_plane import DataPlane
from repro.errors import InvalidArgument
from repro.fabric.transport import LocalPCIeTransport
from repro.io import (
    IOCompletion,
    IORequest,
    QoSClass,
    iter_read_chunks,
    iter_write_chunks,
    merge_adjacent_extents,
)
from repro.nvme import SSD, Payload
from repro.nvme.commands import Opcode
from repro.sim import Environment
from repro.units import GiB, KiB, MiB

from tests.conftest import deterministic_spec


# -- chunk helpers vs the legacy loops --------------------------------------


def legacy_write_chunks(offset, payload, limit):
    """Verbatim transcription of the pre-envelope ``DataPlane._chunk``."""
    if limit is None or payload.nbytes <= limit:
        return [(offset, payload)]
    out = []
    at = 0
    while at < payload.nbytes:
        size = min(limit, payload.nbytes - at)
        out.append((offset + at, payload.slice(at, size)))
        at += size
    return out


def legacy_read_chunks(offset, nbytes, limit):
    """Verbatim transcription of the pre-envelope read_runs loop."""
    out = []
    at = offset
    remaining = nbytes
    while remaining > 0:
        size = min(remaining, limit) if limit is not None else remaining
        out.append((at, size))
        at += size
        remaining -= size
    return out


@pytest.mark.parametrize("nbytes,limit", [
    (0, MiB(8)), (1, MiB(8)), (MiB(8), MiB(8)), (MiB(8) + 1, MiB(8)),
    (MiB(32), MiB(8)), (MiB(3), None), (KiB(100), KiB(32)),
])
def test_write_chunks_match_legacy(nbytes, limit):
    payload = Payload.synthetic("w", nbytes)
    got = list(iter_write_chunks(1000, payload, limit))
    want = legacy_write_chunks(1000, payload, limit)
    assert [(o, p.nbytes, p.tag) for o, p in got] == \
        [(o, p.nbytes, p.tag) for o, p in want]


@pytest.mark.parametrize("nbytes,limit", [
    (0, MiB(8)), (1, MiB(8)), (MiB(8), MiB(8)), (MiB(8) + 1, MiB(8)),
    (MiB(32), MiB(8)), (MiB(3), None),
])
def test_read_chunks_match_legacy(nbytes, limit):
    assert list(iter_read_chunks(512, nbytes, limit)) == \
        legacy_read_chunks(512, nbytes, limit)


def test_zero_byte_write_chunk_yields_itself():
    # The historical write path issued even empty payloads as one command.
    chunks = list(iter_write_chunks(0, Payload.of_bytes(b""), MiB(1)))
    assert len(chunks) == 1
    assert chunks[0][1].nbytes == 0


def test_zero_byte_read_yields_nothing():
    # The historical read loop never issued empty commands.
    assert list(iter_read_chunks(0, 0, MiB(1))) == []


def test_real_payload_chunks_carry_real_bytes():
    data = bytes(range(256)) * 16
    chunks = list(iter_write_chunks(0, Payload.of_bytes(data), 1024))
    assert len(chunks) == 4
    assert b"".join(p.data for _o, p in chunks) == data
    assert [o for o, _p in chunks] == [0, 1024, 2048, 3072]


# -- merge_adjacent_extents --------------------------------------------------


def test_merge_empty_list():
    assert merge_adjacent_extents([]) == []


def test_merge_adjacent_real_payloads():
    chunks = [(0, Payload.of_bytes(b"aa")), (2, Payload.of_bytes(b"bb")),
              (4, Payload.of_bytes(b"cc"))]
    merged = merge_adjacent_extents(chunks)
    assert len(merged) == 1
    assert merged[0][0] == 0
    assert merged[0][1].data == b"aabbcc"


def test_merge_keeps_gap_separate():
    chunks = [(0, Payload.of_bytes(b"aa")), (100, Payload.of_bytes(b"bb"))]
    merged = merge_adjacent_extents(chunks)
    assert len(merged) == 2


def test_merge_never_fuses_synthetic():
    # Synthetic payloads keep identity tags for read-back verification.
    chunks = [(0, Payload.synthetic("a", 100)), (100, Payload.synthetic("b", 100))]
    merged = merge_adjacent_extents(chunks)
    assert len(merged) == 2
    assert merged[0][1].tag == "a"
    assert merged[1][1].tag == "b"


def test_merge_mixed_real_and_synthetic():
    chunks = [(0, Payload.of_bytes(b"xx")), (2, Payload.synthetic("s", 2)),
              (4, Payload.of_bytes(b"yy")), (6, Payload.of_bytes(b"zz"))]
    merged = merge_adjacent_extents(chunks)
    assert [p.is_synthetic for _o, p in merged] == [False, True, False]
    assert merged[2][1].data == b"yyzz"


# -- IORequest factories ------------------------------------------------------


def test_write_runs_factory_fields():
    runs = [(0, Payload.synthetic("x", MiB(2)))]
    req = IORequest.write_runs(7, runs, command_size=KiB(32), chunk_bytes=MiB(8))
    assert req.op is Opcode.WRITE
    assert req.nsid == 7
    assert req.qos is QoSClass.CKPT_DATA
    assert req.batchable
    assert not req.flush_after
    assert req.total_bytes == MiB(2)
    assert req.derived_cmds() == MiB(2) // KiB(32)
    assert req.span_name == "dataplane.write"
    assert dict(req.counters) == {
        "data_bytes_written": MiB(2), "data_commands": MiB(2) // KiB(32),
    }


def test_read_runs_factory_fields():
    req = IORequest.read_runs(1, [(0, KiB(64))], command_size=KiB(32),
                              chunk_bytes=None)
    assert req.op is Opcode.READ
    assert req.qos is QoSClass.RECOVERY
    assert not req.batchable
    assert req.derived_cmds() == 2
    assert dict(req.counters) == {"data_bytes_read": KiB(64)}


def test_log_page_factory_pads_and_pins_one_command():
    req = IORequest.log_page(1, 4096, b"rec", wire_bytes=64)
    assert req.qos is QoSClass.JOURNAL
    assert req.flush_after
    # One doorbell regardless of size; wire bytes padded, 4 KiB floor.
    assert req.derived_cmds() == 1
    assert req.command_size == 4096
    assert req.extents[0][1].nbytes == 64
    assert dict(req.counters) == {"log_bytes_written": 64, "log_flushes": 1}


def test_log_page_large_page_keeps_wire_size():
    req = IORequest.log_page(1, 0, b"x" * KiB(16), wire_bytes=KiB(16))
    assert req.command_size == KiB(16)
    assert req.derived_cmds() == 1


def test_state_blob_factory_floor_division():
    # Historical cost model: floor, not ceil — 5 pages / 32 KiB = 0 -> 1.
    req = IORequest.state_blob(1, 0, b"s" * (5 * 4096), command_size=KiB(32))
    assert req.derived_cmds() == 1
    req = IORequest.state_blob(1, 0, b"s" * KiB(96), command_size=KiB(32))
    assert req.derived_cmds() == 3
    assert req.flush_after
    assert req.extents[0][1].nbytes == KiB(96)  # padded to 4 KiB pages


def test_recovery_read_skips_software_charge():
    req = IORequest.recovery_read(1, 0, KiB(8), command_size=KiB(32))
    assert req.op is Opcode.READ
    assert not req.charge_software
    assert req.span_attrs["recovery"] is True


def test_request_validation():
    with pytest.raises(InvalidArgument):
        IORequest(op=Opcode.FLUSH, nsid=1, extents=[], command_size=4096)
    with pytest.raises(InvalidArgument):
        IORequest(op=Opcode.WRITE, nsid=1, extents=[], command_size=0)
    with pytest.raises(InvalidArgument):
        IORequest(op=Opcode.WRITE, nsid=1, extents=[], command_size=4096,
                  retry_budget=-1)
    with pytest.raises(InvalidArgument):
        IORequest(op=Opcode.WRITE, nsid=1, extents=[], command_size=4096,
                  qos="journal")


def test_chunks_unified_iterator_covers_all_extents():
    runs = [(0, Payload.synthetic("a", MiB(3))), (MiB(10), Payload.synthetic("b", MiB(1)))]
    req = IORequest.write_runs(1, runs, command_size=KiB(32), chunk_bytes=MiB(2))
    chunks = list(req.chunks())
    assert [(o, p.nbytes) for o, p in chunks] == [
        (0, MiB(2)), (MiB(2), MiB(1)), (MiB(10), MiB(1)),
    ]


def test_completion_ok_property():
    done = IOCompletion(status="ok", qos=QoSClass.JOURNAL, nbytes=1,
                        n_cmds=1, latency_s=0.0)
    assert done.ok
    assert not IOCompletion(status="deadline", qos=QoSClass.JOURNAL,
                            nbytes=0, n_cmds=0, latency_s=0.0).ok


# -- pinned-seed event-sequence equivalence (satellite: dedup proof) ---------


def _chunky_workload(env, dp):
    """A workload that exercises every historical chunking call site:
    multi-chunk writes, chunked reads, log pages, and state blobs."""

    def scenario():
        yield from dp.write_runs([(0, Payload.synthetic("big", MiB(20)))])
        yield from dp.write_runs(
            [(MiB(20), Payload.of_bytes(b"x" * KiB(64)))], command_size=KiB(4))
        yield from dp.write_log_page(MiB(24), b"journal-record", 4096)
        yield from dp.write_state(MiB(25), b"s" * KiB(40))
        yield from dp.read_runs([(0, MiB(20))])
        data = yield from dp.read_bytes(MiB(20), KiB(64))
        return data

    return env.run_until_complete(env.process(scenario()))


def _build_plane(seed=0):
    env = Environment()
    ssd = SSD(env, deterministic_spec(), "s0", rng=np.random.default_rng(seed))
    ns = ssd.create_namespace(GiB(4))
    config = RuntimeConfig(max_batch_bytes=MiB(8))
    return env, ssd, DataPlane(env, LocalPCIeTransport(env, ssd), ns.nsid, config)


def test_pinned_seed_event_sequence_identical():
    """Two identical builds replay the exact same event sequence, and the
    unified chunker reproduces the pre-refactor pinned timings.

    The makespan and counter values below were captured from the legacy
    per-call-site chunking loops; they pin the envelope's helpers to the
    historical behaviour bit-for-bit.
    """
    outcomes = []
    for _ in range(2):
        env, ssd, dp = _build_plane()
        data = _chunky_workload(env, dp)
        outcomes.append((
            env.now,
            data,
            dp.counters.get("data_bytes_written"),
            dp.counters.get("data_commands"),
            dp.counters.get("log_bytes_written"),
            dp.counters.get("state_bytes_written"),
            ssd.counters.get("bytes_written"),
            ssd.counters.get("commands"),
        ))
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][1] == b"x" * KiB(64)
    assert outcomes[0][2] == MiB(20) + KiB(64)
