"""Tests for the evaluation metrics."""

import pytest

from repro.apps.checkpoint import CheckpointStats
from repro.metrics import (
    coefficient_of_variation,
    efficiency,
    progress_rate,
    summarize_stats,
)


def test_efficiency_basic():
    # 10 GB in 5 s over 4 GB/s hardware: 0.5 efficiency.
    assert efficiency(10e9, 5.0, 4e9) == pytest.approx(0.5)


def test_efficiency_clipped_at_one():
    assert efficiency(100e9, 1.0, 1e9) == 1.0


def test_efficiency_invalid_inputs():
    with pytest.raises(ValueError):
        efficiency(1.0, 0.0, 1.0)
    with pytest.raises(ValueError):
        efficiency(1.0, 1.0, 0.0)


def test_progress_rate():
    assert progress_rate(30.0, 100.0) == pytest.approx(0.3)
    with pytest.raises(ValueError):
        progress_rate(5.0, 0.0)
    with pytest.raises(ValueError):
        progress_rate(11.0, 10.0)


def test_cov_balanced_is_zero():
    assert coefficient_of_variation([5, 5, 5, 5]) == 0.0


def test_cov_imbalanced_positive():
    assert coefficient_of_variation([10, 0, 0, 0]) == pytest.approx(3 ** 0.5)


def test_cov_empty_rejected():
    with pytest.raises(ValueError):
        coefficient_of_variation([])


def test_cov_all_zero():
    assert coefficient_of_variation([0, 0]) == 0.0


def test_summarize_stats():
    a = CheckpointStats(checkpoint_times=[1.0, 2.0], restart_times=[0.5],
                        compute_time=4.0, bytes_written=100)
    b = CheckpointStats(checkpoint_times=[1.5, 2.5], restart_times=[0.7],
                        compute_time=6.0, bytes_written=100)
    row = summarize_stats("sys", 2, [a, b])
    assert row.checkpoint_time == 4.0  # max across ranks
    assert row.restart_time == 0.7
    assert row.compute_time == 5.0  # mean
    assert row.total_bytes == 200


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize_stats("sys", 0, [])


def test_checkpoint_stats_progress():
    stats = CheckpointStats(checkpoint_times=[2.0], compute_time=8.0)
    assert stats.progress_rate() == pytest.approx(0.8)
    assert CheckpointStats().progress_rate() == 0.0
