"""Tests for the simulated MPI communicators and job launcher."""


from repro.mpi import Communicator, launch
from repro.sim import Environment


def test_barrier_synchronizes_ranks():
    env = Environment()
    release_times = []

    def rank_main(comm):
        yield env.timeout(comm.rank * 1.0)  # staggered arrivals
        yield from comm.barrier()
        release_times.append(env.now)

    job = launch(env, 4, rank_main)
    env.run()
    assert job.done.triggered
    # Everyone leaves at (or just after) the last arrival at t=3.
    assert all(t >= 3.0 for t in release_times)
    assert max(release_times) - min(release_times) < 1e-9


def test_allgather_collects_all_values():
    env = Environment()

    def rank_main(comm):
        values = yield from comm.allgather(comm.rank * 10)
        return values

    job = launch(env, 5, rank_main)
    env.run()
    for result in job.results():
        assert result == [0, 10, 20, 30, 40]


def test_bcast_delivers_root_value():
    env = Environment()

    def rank_main(comm):
        value = yield from comm.bcast(f"from-{comm.rank}" if comm.rank == 2 else None, root=2)
        return value

    job = launch(env, 4, rank_main)
    env.run()
    assert job.results() == ["from-2"] * 4


def test_gather_only_root_receives():
    env = Environment()

    def rank_main(comm):
        return (yield from comm.gather(comm.rank ** 2, root=0))

    job = launch(env, 4, rank_main)
    env.run()
    results = job.results()
    assert results[0] == [0, 1, 4, 9]
    assert results[1:] == [None, None, None]


def test_multiple_sequential_collectives_match_in_order():
    env = Environment()

    def rank_main(comm):
        first = yield from comm.allgather(("a", comm.rank))
        yield from comm.barrier()
        second = yield from comm.allgather(("b", comm.rank))
        return (first[0], second[0])

    job = launch(env, 3, rank_main)
    env.run()
    for first, second in job.results():
        assert first == ("a", 0)
        assert second == ("b", 0)


def test_split_groups_by_color():
    env = Environment()

    def rank_main(comm):
        color = comm.rank % 2
        sub = yield from comm.split(color)
        members = yield from sub.allgather(comm.rank)
        return (color, sub.rank, sub.size, members)

    job = launch(env, 6, rank_main)
    env.run()
    for world_rank, (color, sub_rank, sub_size, members) in job.result_map().items():
        assert sub_size == 3
        assert members == ([0, 2, 4] if color == 0 else [1, 3, 5])
        assert members[sub_rank] == world_rank


def test_split_with_key_reorders():
    env = Environment()

    def rank_main(comm):
        # Reverse ordering: highest world rank becomes sub-rank 0.
        sub = yield from comm.split(0, key=comm.size - comm.rank)
        return sub.rank

    job = launch(env, 4, rank_main)
    env.run()
    assert job.results() == [3, 2, 1, 0]


def test_world_handles_share_state():
    env = Environment()
    comms = Communicator.world(env, 3)
    assert all(c.size == 3 for c in comms)
    assert [c.rank for c in comms] == [0, 1, 2]


def test_single_rank_collectives_trivial():
    env = Environment()

    def rank_main(comm):
        yield from comm.barrier()
        values = yield from comm.allgather("solo")
        return values

    job = launch(env, 1, rank_main)
    env.run()
    assert job.results() == [["solo"]]


def test_launch_attaches_node_names():
    env = Environment()

    def rank_main(comm):
        yield from comm.barrier()
        return comm.node

    job = launch(env, 4, rank_main, node_of_rank=lambda r: f"comp{r // 2:02d}")
    env.run()
    assert job.results() == ["comp00", "comp00", "comp01", "comp01"]


def test_collective_charges_latency():
    env = Environment()

    def rank_main(comm):
        yield from comm.barrier()
        return env.now

    job = launch(env, 8, rank_main)
    env.run()
    assert all(t > 0 for t in job.results())
