"""Tests for the simulated SSD."""

import numpy as np
import pytest

from repro.errors import DeviceError, DevicePoweredOff, InvalidCommand, OutOfSpace
from repro.nvme import SSD, Payload, SSDSpec, generic_nand_ssd, intel_p4800x
from repro.sim import Environment
from repro.units import GB_per_s, GiB, KiB, MiB, us


def make_ssd(env, spec=None, beta=0.0):
    """An SSD with arbitration jitter disabled for deterministic timing."""
    base = spec or intel_p4800x()
    spec = SSDSpec(
        model=base.model,
        capacity_bytes=base.capacity_bytes,
        write_bandwidth=base.write_bandwidth,
        read_bandwidth=base.read_bandwidth,
        per_command_cost=base.per_command_cost,
        flush_cost=base.flush_cost,
        lba_size=base.lba_size,
        max_hw_queues=base.max_hw_queues,
        max_namespaces=base.max_namespaces,
        ram_buffer_bytes=base.ram_buffer_bytes,
        ram_write_bandwidth=base.ram_write_bandwidth,
        arbitration_beta=beta,
    )
    return SSD(env, spec, "ssd0", rng=np.random.default_rng(1))


def test_p4800x_spec_sanity():
    spec = intel_p4800x()
    assert spec.write_bandwidth == GB_per_s(2.2)
    assert spec.max_hw_queues == 32
    assert spec.ram_buffer_bytes == 0


def test_namespace_create_and_capacity():
    env = Environment()
    ssd = make_ssd(env)
    ns = ssd.create_namespace(GiB(10))
    assert ns.nsid == 1
    assert ssd.free_bytes() == ssd.spec.capacity_bytes - GiB(10)


def test_namespace_overallocation_rejected():
    env = Environment()
    ssd = make_ssd(env)
    with pytest.raises(OutOfSpace):
        ssd.create_namespace(ssd.spec.capacity_bytes + 1)


def test_namespace_delete_frees_space():
    env = Environment()
    ssd = make_ssd(env)
    ns = ssd.create_namespace(GiB(10))
    ssd.delete_namespace(ns.nsid)
    assert ssd.free_bytes() == ssd.spec.capacity_bytes
    with pytest.raises(DeviceError):
        ssd.namespace(ns.nsid)


def test_write_read_roundtrip():
    env = Environment()
    ssd = make_ssd(env)
    ns = ssd.create_namespace(GiB(1))

    def proc():
        yield ssd.write(ns.nsid, 0, Payload.of_bytes(b"x" * 4096), KiB(32))
        result = yield ssd.read(ns.nsid, 0, 4096, KiB(32))
        return result.extra["extents"]

    extents = env.run_until_complete(env.process(proc()))
    assert len(extents) == 1
    assert extents[0].payload.data == b"x" * 4096


def test_single_writer_gets_full_bandwidth():
    env = Environment()
    ssd = make_ssd(env)
    ns = ssd.create_namespace(GiB(2))
    nbytes = MiB(512)

    def proc():
        result = yield ssd.write(
            ns.nsid, 0, Payload.synthetic("big", nbytes), KiB(32)
        )
        return result.latency

    latency = env.run_until_complete(env.process(proc()))
    expected = nbytes / ssd.spec.write_bandwidth
    assert latency == pytest.approx(expected, rel=0.01)


def test_small_commands_hit_qd1_ceiling():
    """A single instance issuing 4 KiB commands run-to-completion is
    capped at command_size/access_latency, far below bandwidth."""
    env = Environment()
    ssd = make_ssd(env)
    ns = ssd.create_namespace(GiB(2))
    nbytes = MiB(64)

    def proc():
        result = yield ssd.write(
            ns.nsid, 0, Payload.synthetic("small", nbytes), 4096
        )
        return result.latency

    latency = env.run_until_complete(env.process(proc()))
    ceiling = 4096 / ssd.spec.access_latency  # ~0.41 GB/s
    assert latency == pytest.approx(nbytes / ceiling, rel=0.01)
    assert latency > nbytes / ssd.spec.write_bandwidth


def test_small_commands_aggregate_controller_ceiling():
    """Many concurrent 4 KiB streams saturate the controller's command
    rate (1/per_command_cost), ~7% below sequential bandwidth."""
    env = Environment()
    ssd = make_ssd(env)
    ns = ssd.create_namespace(GiB(8))
    per_client = MiB(16)
    nclients = 28
    done = []

    def writer(i):
        yield ssd.write(ns.nsid, i * per_client, Payload.synthetic(f"w{i}", per_client), 4096)
        done.append(env.now)

    for i in range(nclients):
        env.process(writer(i))
    env.run()
    aggregate = nclients * per_client / max(done)
    ceiling = 4096 / ssd.spec.per_command_cost
    assert aggregate == pytest.approx(ceiling, rel=0.02)
    assert aggregate < ssd.spec.write_bandwidth


def test_concurrent_writers_share_bandwidth_fairly():
    env = Environment()
    ssd = make_ssd(env)
    ns = ssd.create_namespace(GiB(4))
    nbytes = MiB(256)
    done = {}

    def writer(i):
        yield ssd.write(ns.nsid, i * nbytes, Payload.synthetic(f"w{i}", nbytes), KiB(32))
        done[i] = env.now

    for i in range(4):
        env.process(writer(i))
    env.run()
    expected = 4 * nbytes / ssd.spec.write_bandwidth
    for i in range(4):
        assert done[i] == pytest.approx(expected, rel=0.01)


def test_sub_lba_write_modeled_as_rmw():
    """Byte-granular offsets are accepted (controller-side RMW)."""
    env = Environment()
    ssd = make_ssd(env)
    ns = ssd.create_namespace(GiB(1))

    def proc():
        yield ssd.write(ns.nsid, 17, Payload.of_bytes(b"x"), KiB(32))
        result = yield ssd.read(ns.nsid, 16, 3, KiB(32))
        return result.extra["extents"]

    extents = env.run_until_complete(env.process(proc()))
    assert extents[0].start == 17
    assert extents[0].payload.data == b"x"


def test_out_of_namespace_write_rejected():
    env = Environment()
    ssd = make_ssd(env)
    ns = ssd.create_namespace(MiB(1))
    with pytest.raises(InvalidCommand):
        ssd.write(ns.nsid, 0, Payload.synthetic("big", MiB(2)), KiB(32))


def test_power_fail_rejects_new_io():
    env = Environment()
    ssd = make_ssd(env)
    ns = ssd.create_namespace(GiB(1))
    ssd.power_fail()
    with pytest.raises(DevicePoweredOff):
        ssd.write(ns.nsid, 0, Payload.of_bytes(b"x" * 4096), KiB(32))


def test_power_fail_loses_inflight_but_keeps_committed():
    env = Environment()
    ssd = make_ssd(env)
    ns = ssd.create_namespace(GiB(2))
    outcome = {}

    def writer():
        yield ssd.write(ns.nsid, 0, Payload.of_bytes(b"A" * 4096), KiB(32))
        outcome["committed"] = True
        try:
            yield ssd.write(
                ns.nsid, MiB(1), Payload.synthetic("doomed", MiB(512)), KiB(32)
            )
            outcome["second"] = "completed"
        except DevicePoweredOff:
            outcome["second"] = "lost"

    def killer():
        yield env.timeout(0.05)  # mid-transfer of the 512 MiB write
        ssd.power_fail()

    env.process(writer())
    env.process(killer())
    env.run()
    assert outcome == {"committed": True, "second": "lost"}
    ssd.power_restore()
    assert ns.store.read_bytes(0, 4096) == b"A" * 4096
    assert ns.store.read(MiB(1), MiB(512)) == []  # in-flight write vanished


def test_flush_costs_flush_latency():
    env = Environment()
    ssd = make_ssd(env)
    ns = ssd.create_namespace(GiB(1))

    def proc():
        t0 = env.now
        yield ssd.flush(ns.nsid)
        return env.now - t0

    latency = env.run_until_complete(env.process(proc()))
    assert latency == pytest.approx(us(5.0))


def test_queue_allocation_wraps_past_hw_limit():
    env = Environment()
    ssd = make_ssd(env)
    qids = [ssd.allocate_queue() for _ in range(40)]
    assert qids[:32] == list(range(32))
    assert qids[32:] == list(range(8))
    assert ssd.queues_shared


def test_ram_buffer_absorbs_burst_then_throttles():
    """NAND spec: a burst within RAM goes at RAM speed; a huge write is
    flash-bound."""
    env = Environment()
    ssd = SSD(env, generic_nand_ssd(), "nand0", rng=np.random.default_rng(2))
    spec = ssd.spec
    ns = ssd.create_namespace(GiB(8))

    def burst():
        result = yield ssd.write(
            ns.nsid, 0, Payload.synthetic("burst", MiB(256)), KiB(128)
        )
        return result.latency

    latency = env.run_until_complete(env.process(burst()))
    # 256 MiB fits in the 1 GiB buffer: near RAM ingest speed.
    assert latency == pytest.approx(MiB(256) / spec.ram_write_bandwidth, rel=0.05)

    env2 = Environment()
    ssd2 = SSD(env2, generic_nand_ssd(), "nand1", rng=np.random.default_rng(3))
    ns2 = ssd2.create_namespace(GiB(8))

    def huge():
        result = yield ssd2.write(
            ns2.nsid, 0, Payload.synthetic("huge", GiB(4)), KiB(128)
        )
        return result.latency

    latency2 = env2.run_until_complete(env2.process(huge()))
    # 4 GiB >> buffer: sustained flash bandwidth dominates.
    assert latency2 >= GiB(3) / spec.write_bandwidth


def test_counters_track_bytes_and_commands():
    env = Environment()
    ssd = make_ssd(env)
    ns = ssd.create_namespace(GiB(1))

    def proc():
        yield ssd.write(ns.nsid, 0, Payload.synthetic("x", MiB(1)), KiB(32))
        yield ssd.read(ns.nsid, 0, MiB(1), KiB(32))

    env.run_until_complete(env.process(proc()))
    assert ssd.counters.get("bytes_written") == MiB(1)
    assert ssd.counters.get("bytes_read") == MiB(1)
    assert ssd.counters.get("write_commands") == 32  # 1 MiB / 32 KiB


def test_arbitration_jitter_grows_with_command_size():
    """With jitter enabled, large commands see larger admission delays."""
    def total_time(command_size):
        env = Environment()
        base = intel_p4800x()
        spec = SSDSpec(
            model=base.model, capacity_bytes=base.capacity_bytes,
            write_bandwidth=base.write_bandwidth, read_bandwidth=base.read_bandwidth,
            per_command_cost=0.0000001, flush_cost=base.flush_cost,
            arbitration_beta=0.5,
        )
        ssd = SSD(env, spec, "s", rng=np.random.default_rng(7))
        ns = ssd.create_namespace(GiB(64))
        per_proc = MiB(64)

        def writer(i):
            # Sequential chunks of one command each -> repeated admission.
            for chunk in range(8):
                offset = i * per_proc + chunk * (per_proc // 8)
                yield ssd.write(
                    ns.nsid, offset,
                    Payload.synthetic(f"w{i}.{chunk}", per_proc // 8),
                    command_size,
                )

        for i in range(8):
            env.process(writer(i))
        env.run()
        return env.now

    assert total_time(MiB(8)) > total_time(KiB(32))
