"""Tests for the extent store."""

import pytest

from repro.errors import InvalidCommand
from repro.nvme.commands import Payload
from repro.nvme.extents import ExtentStore


def test_write_then_read_back_bytes():
    store = ExtentStore(1024)
    store.write(100, Payload.of_bytes(b"hello"))
    assert store.read_bytes(100, 5) == b"hello"


def test_read_gap_zero_fills():
    store = ExtentStore(1024)
    store.write(10, Payload.of_bytes(b"ab"))
    assert store.read_bytes(8, 6) == b"\x00\x00ab\x00\x00"


def test_overwrite_replaces_overlap():
    store = ExtentStore(1024)
    store.write(0, Payload.of_bytes(b"aaaaaaaa"))
    store.write(2, Payload.of_bytes(b"BB"))
    assert store.read_bytes(0, 8) == b"aaBBaaaa"


def test_overwrite_spanning_multiple_extents():
    store = ExtentStore(1024)
    store.write(0, Payload.of_bytes(b"1111"))
    store.write(4, Payload.of_bytes(b"2222"))
    store.write(8, Payload.of_bytes(b"3333"))
    store.write(2, Payload.of_bytes(b"XXXXXXXX"))  # covers [2, 10)
    assert store.read_bytes(0, 12) == b"11XXXXXXXX33"
    assert store.extent_count() == 3


def test_exact_overwrite_keeps_single_extent():
    store = ExtentStore(64)
    store.write(0, Payload.of_bytes(b"old!"))
    store.write(0, Payload.of_bytes(b"new!"))
    assert store.read_bytes(0, 4) == b"new!"
    assert store.extent_count() == 1


def test_interior_overwrite_splits_extent():
    store = ExtentStore(64)
    store.write(0, Payload.of_bytes(b"abcdefgh"))
    store.write(3, Payload.of_bytes(b"XY"))
    assert store.read_bytes(0, 8) == b"abcXYfgh"
    assert store.extent_count() == 3


def test_synthetic_payload_identity_preserved():
    store = ExtentStore(10**9)
    store.write(0, Payload.synthetic("ckpt-r0-s1", 10**6))
    pieces = store.read(0, 10**6)
    assert len(pieces) == 1
    assert pieces[0].payload.tag == "ckpt-r0-s1"
    assert pieces[0].payload.nbytes == 10**6


def test_synthetic_partial_read_tags_offset():
    store = ExtentStore(10**6)
    store.write(0, Payload.synthetic("bulk", 1000))
    pieces = store.read(200, 300)
    assert len(pieces) == 1
    assert pieces[0].payload.tag == "bulk+200"
    assert pieces[0].payload.nbytes == 300


def test_read_bytes_over_synthetic_raises():
    store = ExtentStore(4096)
    store.write(0, Payload.synthetic("bulk", 128))
    with pytest.raises(InvalidCommand):
        store.read_bytes(0, 128)


def test_discard_removes_range():
    store = ExtentStore(64)
    store.write(0, Payload.of_bytes(b"abcdefgh"))
    store.discard(2, 4)
    assert store.read_bytes(0, 8) == b"ab\x00\x00\x00\x00gh"
    assert store.bytes_stored() == 4


def test_out_of_range_write_rejected():
    store = ExtentStore(8)
    with pytest.raises(InvalidCommand):
        store.write(4, Payload.of_bytes(b"too-long"))


def test_out_of_range_read_rejected():
    store = ExtentStore(8)
    with pytest.raises(InvalidCommand):
        store.read(0, 9)


def test_bytes_stored_accounting():
    store = ExtentStore(1024)
    store.write(0, Payload.of_bytes(b"x" * 100))
    store.write(50, Payload.of_bytes(b"y" * 100))  # overlaps 50
    assert store.bytes_stored() == 150


def test_clear():
    store = ExtentStore(64)
    store.write(0, Payload.of_bytes(b"data"))
    store.clear()
    assert store.extent_count() == 0
    assert store.read_bytes(0, 4) == b"\x00\x00\x00\x00"


def test_zero_length_write_noop():
    store = ExtentStore(64)
    store.write(0, Payload.of_bytes(b""))
    assert store.extent_count() == 0


def test_adjacent_extents_not_merged_but_read_contiguously():
    store = ExtentStore(64)
    store.write(0, Payload.of_bytes(b"ab"))
    store.write(2, Payload.of_bytes(b"cd"))
    assert store.read_bytes(0, 4) == b"abcd"


def test_read_on_empty_store_returns_empty_list():
    store = ExtentStore(1024)
    assert store.read(0, 1024) == []
    assert store.read_bytes(0, 8) == b"\x00" * 8
    assert store.bytes_stored() == 0


def test_zero_length_read_returns_empty_list():
    store = ExtentStore(64)
    store.write(0, Payload.of_bytes(b"data"))
    assert store.read(2, 0) == []


def test_discard_on_empty_store_is_noop():
    store = ExtentStore(64)
    store.discard(0, 64)
    assert store.extent_count() == 0


def test_zero_size_store_accepts_only_empty_ranges():
    store = ExtentStore(0)
    assert store.read(0, 0) == []
    store.write(0, Payload.of_bytes(b""))
    with pytest.raises(InvalidCommand):
        store.read(0, 1)


def test_read_between_extents_returns_empty():
    store = ExtentStore(1024)
    store.write(0, Payload.of_bytes(b"aa"))
    store.write(100, Payload.of_bytes(b"bb"))
    assert store.read(10, 50) == []
