"""Tests for queue pairs (polled completion) and the power controller."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.nvme import Command, Opcode, Payload, PowerController, QueuePair, SSD
from repro.sim import Environment
from repro.units import GiB, MiB

from tests.conftest import deterministic_spec


@pytest.fixture
def qp_rig():
    env = Environment()
    ssd = SSD(env, deterministic_spec(), "s0", rng=np.random.default_rng(0))
    ns = ssd.create_namespace(GiB(2))
    return env, ssd, ns, QueuePair(env, ssd, depth=8)


def test_submit_and_poll(qp_rig):
    env, ssd, ns, qp = qp_rig
    qp.submit(Command(Opcode.WRITE, ns.nsid, slba=0, nblocks=1,
                      payload=Payload.of_bytes(b"a" * 4096)))
    assert qp.poll() == []  # nothing complete yet (no time has passed)

    def waiter():
        results = yield from qp.wait_all()
        return results

    results = env.run_until_complete(env.process(waiter()))
    assert len(results) == 1
    assert results[0].command.opcode is Opcode.WRITE


def test_in_order_completion(qp_rig):
    """A small command submitted after a large one completes after it
    (single-queue ordering guarantee of §III-A)."""
    env, ssd, ns, qp = qp_rig
    qp.submit(Command(Opcode.WRITE, ns.nsid, slba=0, nblocks=MiB(64) // 4096,
                      payload=Payload.synthetic("large", MiB(64))))
    qp.submit(Command(Opcode.FLUSH, ns.nsid))

    def waiter():
        return (yield from qp.wait_all())

    results = env.run_until_complete(env.process(waiter()))
    assert [r.command.opcode for r in results] == [Opcode.WRITE, Opcode.FLUSH]


def test_queue_depth_enforced(qp_rig):
    env, ssd, ns, qp = qp_rig
    for _ in range(8):
        qp.submit(Command(Opcode.FLUSH, ns.nsid))
    with pytest.raises(DeviceError):
        qp.submit(Command(Opcode.FLUSH, ns.nsid))


def test_identify(qp_rig):
    env, ssd, ns, qp = qp_rig
    qp.submit(Command(Opcode.IDENTIFY, ns.nsid))

    def waiter():
        return (yield from qp.wait_all())

    results = env.run_until_complete(env.process(waiter()))
    assert results[0].extra["spec"] is ssd.spec


def test_power_controller_fail_and_restore():
    env = Environment()
    ssd = SSD(env, deterministic_spec(), "s0", rng=np.random.default_rng(0))
    ssd.create_namespace(GiB(1))
    controller = PowerController(env, [ssd])
    controller.fail_at(1.0, restore_after=0.5)
    env.run()
    assert ssd.powered
    assert [action for _t, action in controller.events] == ["fail", "restore"]
    assert controller.events[0][0] == pytest.approx(1.0)
    assert controller.events[1][0] == pytest.approx(1.5)
    assert ssd.counters.get("power_failures") == 1


def test_power_controller_permanent_failure():
    env = Environment()
    ssd = SSD(env, deterministic_spec(), "s0", rng=np.random.default_rng(0))
    controller = PowerController(env, [ssd])
    controller.fail_at(0.5)
    env.run()
    assert not ssd.powered
