"""Tests for the WRR-style QoS arbiter at the device front end."""

import numpy as np
import pytest

from repro.errors import InvalidArgument
from repro.io.qos import DEFAULT_WRR_WEIGHTS, QoSClass
from repro.nvme import SSD, Payload
from repro.nvme.queues import WrrArbiter
from repro.sim import Environment
from repro.units import GiB, KiB, MiB

from tests.conftest import deterministic_spec


def test_uncontended_admit_is_yield_free():
    """The fast path grants without a single simulation event — the
    property that keeps the pinned-seed baselines bit-identical."""
    arb = WrrArbiter(Environment())
    gen = arb.admit(QoSClass.JOURNAL)
    with pytest.raises(StopIteration):
        next(gen)
    assert arb.grants[QoSClass.JOURNAL] == 1
    assert arb.waited[QoSClass.JOURNAL] == 0


def test_release_frees_the_slot():
    arb = WrrArbiter(Environment())
    for _ in range(3):
        with pytest.raises(StopIteration):
            next(arb.admit(QoSClass.CKPT_DATA))
        arb.release()
    assert arb.grants[QoSClass.CKPT_DATA] == 3


def _contended_order(mode, submissions, hold=1.0):
    """Admit ``submissions`` while a holder occupies the only slot;
    return the order the waiters are granted service."""
    env = Environment()
    arb = WrrArbiter(env, mode=mode)
    order = []

    def worker(name, cls):
        yield from arb.admit(cls)
        order.append(name)
        yield env.timeout(hold)
        arb.release()

    env.process(worker("holder", QoSClass.CKPT_DATA))
    for name, cls in submissions:
        env.process(worker(name, cls))
    env.run()
    assert order[0] == "holder"
    return order[1:]


_SUBMISSIONS = [
    ("be1", QoSClass.BEST_EFFORT),
    ("ck1", QoSClass.CKPT_DATA),
    ("j1", QoSClass.JOURNAL),
    ("j2", QoSClass.JOURNAL),
    ("rc1", QoSClass.RECOVERY),
]


def test_fcfs_serves_in_arrival_order():
    assert _contended_order("fcfs", _SUBMISSIONS) == \
        ["be1", "ck1", "j1", "j2", "rc1"]


def test_wrr_serves_urgent_classes_first():
    # Journal (weight 8) drains first, then recovery (4), ckpt (2), BE (1).
    assert _contended_order("wrr", _SUBMISSIONS) == \
        ["j1", "j2", "rc1", "ck1", "be1"]


def test_wrr_every_class_makes_progress():
    """Deficit credits guarantee service even for the lowest class: with
    queues deeper than one refill round, best-effort is interleaved
    rather than starved until the end."""
    submissions = [(f"j{i}", QoSClass.JOURNAL) for i in range(20)]
    submissions.insert(0, ("be0", QoSClass.BEST_EFFORT))
    order = _contended_order("wrr", submissions)
    # BE is served after the first 8-credit journal round, not 20th.
    assert order.index("be0") < 12


def test_wrr_share_tracks_weights():
    env = Environment()
    arb = WrrArbiter(env, weights={QoSClass.JOURNAL: 3, QoSClass.BEST_EFFORT: 1})
    done = {QoSClass.JOURNAL: 0, QoSClass.BEST_EFFORT: 0}

    def worker(cls):
        yield from arb.admit(cls)
        yield env.timeout(1.0)
        done[cls] += 1
        arb.release()

    def holder():
        yield from arb.admit(QoSClass.CKPT_DATA)
        yield env.timeout(0.5)
        arb.release()

    env.process(holder())
    for _ in range(12):
        env.process(worker(QoSClass.JOURNAL))
        env.process(worker(QoSClass.BEST_EFFORT))
    env.run(until=8.6)  # holder + 8 served waiters
    served = done[QoSClass.JOURNAL] + done[QoSClass.BEST_EFFORT]
    assert served == 8
    assert done[QoSClass.JOURNAL] == 6  # 3:1 weights
    assert done[QoSClass.BEST_EFFORT] == 2


def test_default_weights_cover_every_class():
    arb = WrrArbiter(Environment())
    assert arb.weights == DEFAULT_WRR_WEIGHTS
    assert set(arb.weights) == set(QoSClass)


def test_unknown_qos_defaults_to_best_effort():
    arb = WrrArbiter(Environment())
    with pytest.raises(StopIteration):
        next(arb.admit(None))
    assert arb.grants[QoSClass.BEST_EFFORT] == 1


def test_validation():
    env = Environment()
    with pytest.raises(InvalidArgument):
        WrrArbiter(env, mode="priority")
    with pytest.raises(InvalidArgument):
        WrrArbiter(env, slots=0)
    with pytest.raises(InvalidArgument):
        WrrArbiter(env, weights={QoSClass.JOURNAL: 0})


def test_multi_slot_concurrency():
    env = Environment()
    arb = WrrArbiter(env, slots=2)
    active = []
    peak = []

    def worker(name):
        yield from arb.admit(QoSClass.CKPT_DATA)
        active.append(name)
        peak.append(len(active))
        yield env.timeout(1.0)
        active.remove(name)
        arb.release()

    for i in range(5):
        env.process(worker(f"w{i}"))
    env.run()
    assert max(peak) == 2


def test_device_timeline_unchanged_without_contention():
    """Installing an arbiter that never saturates must not move a single
    event: same rng draws, same makespan as the arbiter-free device."""
    def dump(with_arbiter):
        env = Environment()
        ssd = SSD(env, deterministic_spec(), "s0",
                  rng=np.random.default_rng(3))
        ns = ssd.create_namespace(GiB(1))
        if with_arbiter:
            ssd.arbiter = WrrArbiter(env, slots=1)

        def scenario():
            for i in range(8):
                yield ssd.write(ns.nsid, i * MiB(1),
                                Payload.synthetic(f"c{i}", MiB(1)), KiB(32),
                                qos=QoSClass.CKPT_DATA)

        env.run_until_complete(env.process(scenario()))
        return env.now

    assert dump(False) == dump(True)
