"""Golden exporter tests: Chrome trace validity, determinism, JSONL, CLI."""

import json


from repro import obs
from repro.bench.harness import dump_files
from repro.core.config import RuntimeConfig
from repro.obs.export import chrome_trace, span_sequence, total_duration
from repro.systems import build
from repro.units import KiB, MiB


def _traced_run(system="microfs", nprocs=2, seed=2, nbytes=MiB(8)):
    config = RuntimeConfig(
        log_region_bytes=MiB(4), state_region_bytes=MiB(16),
        hugeblock_bytes=KiB(32),
    )
    with obs.capture(trace=True) as cap:
        fleet = build(system, nprocs=nprocs, config=config,
                      partition_bytes=2 * nbytes + MiB(64), seed=seed)
        makespan = fleet.makespan(dump_files(nbytes))
    return makespan, cap


def test_chrome_trace_golden_schema():
    """Two-rank run exports a valid, Perfetto-loadable trace document."""
    _ms, cap = _traced_run()
    doc = chrome_trace(cap.contexts)
    assert set(doc) >= {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    assert events, "trace must not be empty"
    json.dumps(doc)  # serialisable end to end

    stacks = {}
    for ev in events:
        assert {"ph", "pid", "tid"} <= set(ev), ev
        if ev["ph"] != "E":  # E closes the innermost B; no name needed
            assert "name" in ev, ev
        if ev["ph"] != "M":  # metadata events carry no timestamp
            assert ev["ts"] >= 0
        if ev["ph"] == "B":
            stacks.setdefault((ev["pid"], ev["tid"]), []).append(ev)
        elif ev["ph"] == "E":
            stack = stacks.get((ev["pid"], ev["tid"]))
            assert stack, f"E without B on tid {ev['tid']}"
            top = stack.pop()
            assert ev["ts"] >= top["ts"], "negative duration"
        else:
            assert ev["ph"] in ("i", "M"), f"unexpected phase {ev['ph']}"
    unclosed = {k: v for k, v in stacks.items() if v}
    assert not unclosed, f"unmatched B events: {unclosed}"
    # Thread/process naming metadata is present for the Perfetto UI.
    metas = [e for e in events if e["ph"] == "M"]
    assert any(e["name"] == "process_name" for e in metas)
    assert any(e["name"] == "thread_name" for e in metas)


def test_same_seed_same_span_sequence():
    ms1, cap1 = _traced_run(seed=2)
    ms2, cap2 = _traced_run(seed=2)
    assert ms1 == ms2
    seq1 = [span_sequence(c) for c in cap1.contexts]
    seq2 = [span_sequence(c) for c in cap2.contexts]
    assert seq1 == seq2
    assert sum(len(s) for s in seq1) > 0


def test_tracing_does_not_perturb_simulation():
    ms_traced, _ = _traced_run(seed=2)
    config = RuntimeConfig(
        log_region_bytes=MiB(4), state_region_bytes=MiB(16),
        hugeblock_bytes=KiB(32),
    )
    fleet = build("microfs", nprocs=2, config=config,
                  partition_bytes=2 * MiB(8) + MiB(64), seed=2)
    ms_plain = fleet.makespan(dump_files(MiB(8)))
    assert ms_traced == ms_plain


def test_spans_link_across_every_layer():
    """One remote write is followable app -> fs -> dataplane -> fabric -> device."""
    _ms, cap = _traced_run(system="microfs-remote")
    ctx = cap.contexts[0]
    by_id = {s.id: s for s in ctx.tracer.spans}

    def root_cat_chain(span):
        cats = [span.cat]
        while span.parent is not None:
            span = by_id[span.parent]
            cats.append(span.cat)
        return cats

    media = [s for s in ctx.tracer.spans if s.name == "nvme.media"]
    assert media, "no device-level media spans recorded"
    chains = {tuple(reversed(root_cat_chain(s))) for s in media}
    # At least one media span hangs off the full stack above it.
    assert ("fs", "fs", "dataplane", "fabric", "device", "device") in chains or \
        any(c[0] == "fs" and "dataplane" in c and "fabric" in c and "device" in c
            for c in chains), chains


def test_jsonl_export(tmp_path):
    _ms, cap = _traced_run()
    path = cap.write_jsonl(str(tmp_path / "spans.jsonl"))
    records = [json.loads(line) for line in open(path)]
    assert records
    spans = [r for r in records if not r.get("instant")]
    assert all(r["t1"] >= r["t0"] for r in spans)
    assert {"ctx", "id", "name", "cat", "track"} <= set(records[0])


def test_total_duration_filters():
    _ms, cap = _traced_run(system="microfs-remote")
    ctx = cap.contexts[0]
    all_fabric = total_duration(ctx, cat="fabric")
    rtt = total_duration(ctx, name="nvmf.rtt")
    assert 0 < rtt <= all_fabric


def test_nvmf_counters_reach_run_result_extra():
    """Satellite: session-private Counters now surface via the registry."""
    _ms, cap = _traced_run(system="microfs-remote")
    extra = cap.contexts[0].flat_extra()
    for key in ("nvmf.bytes", "nvmf.commands", "nvmf.target.bytes",
                "nvmf.remote_bytes", "nvmf.fabric_wait_s"):
        assert extra.get(key, 0) > 0, key
    # And summarize_stats merges them into a RunResult row.
    from repro.apps.checkpoint import CheckpointStats
    from repro.metrics import summarize_stats

    stats = CheckpointStats()
    stats.checkpoint_times.append(1.0)
    row = summarize_stats("microfs-remote", 2, [stats], obs=cap.contexts[0])
    assert row.extra["nvmf.bytes"] > 0


def test_cli_trace_subcommand(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "t.trace.json"
    rc = main(["trace", "ablation-distributors", "--out", str(out)])
    assert rc == 0
    doc = json.load(open(out))
    assert "traceEvents" in doc  # well-formed even for a sim-free table
    assert "wrote" in capsys.readouterr().out


def test_cli_run_metrics_flag(capsys):
    from repro.cli import main

    rc = main(["run", "ablation-distributors", "--metrics"])
    assert rc == 0
    assert "repro.obs report" in capsys.readouterr().out
