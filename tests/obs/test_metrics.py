"""Metrics instruments, the registry, and the post-shim import contract."""

import importlib.util
import warnings

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    InstrumentMeta,
    MetricsRegistry,
    TraceRecorder,
)


def test_sim_trace_shim_is_gone_and_shortcut_is_warning_free():
    # The deprecated repro.sim.trace alias module has been removed; the
    # supported spellings are repro.obs.metrics and the repro.sim re-export,
    # and neither emits a DeprecationWarning.
    assert importlib.util.find_spec("repro.sim.trace") is None
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        from repro.sim import Counter as sim_counter
        from repro.sim import TraceRecorder as sim_recorder
    assert sim_counter is Counter
    assert sim_recorder is TraceRecorder
    assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]


def test_counter_bag_merge():
    a, b = Counter(), Counter()
    a.add("x", 2)
    b.add("x", 3)
    b.add("y")
    a.merge(b)
    assert a.get("x") == 5 and a.get("y") == 1
    assert a.get("missing") == 0.0


def test_trace_recorder_consistent_lookup_contract():
    rec = TraceRecorder()
    # series() and last() now agree: both raise for unknown names.
    with pytest.raises(KeyError):
        rec.series("nope")
    with pytest.raises(KeyError):
        rec.last("nope")
    assert rec.series("nope", default=[]) == []
    assert "nope" not in rec
    rec.sample("lat", 1.0, 0.5)
    rec.sample("lat", 2.0, 0.7)
    assert rec.series("lat") == [(1.0, 0.5), (2.0, 0.7)]
    assert rec.last("lat") == (2.0, 0.7)
    assert rec.names() == ["lat"]
    assert "lat" in rec


def test_registry_typed_instruments_and_metadata():
    reg = MetricsRegistry()
    reg.counter("io.bytes", unit="B").add(100)
    reg.gauge("depth").set(4)
    reg.histogram("lat", unit="s").observe(0.001)
    metas = reg.names()
    assert all(isinstance(m, InstrumentMeta) for m in metas)
    assert [(m.name, m.kind, m.unit) for m in metas] == [
        ("depth", "gauge", "1"),
        ("io.bytes", "counter", "B"),
        ("lat", "histogram", "s"),
    ]
    assert reg.counter("io.bytes").value == 100  # same instrument on re-ask
    with pytest.raises(ValueError):
        reg.gauge("io.bytes")  # kind conflict
    with pytest.raises(KeyError):
        reg.get("never-made")


def test_counter_instrument_is_monotonic():
    reg = MetricsRegistry()
    c = reg.counter("n")
    c.add(1)
    with pytest.raises(ValueError):
        c.add(-1)


def test_gauge_tracks_extrema():
    reg = MetricsRegistry()
    g = reg.gauge("qd")
    for v in (3, 7, 2):
        g.set(v)
    assert (g.value, g.min, g.max, g.updates) == (2, 2, 7, 3)
    g.inc()
    g.dec(2)
    assert g.value == 1


def test_histogram_percentiles_deterministic():
    h = Histogram(InstrumentMeta("lat", "histogram", "s"))
    for v in [0.001] * 90 + [0.1] * 9 + [1.0]:
        h.observe(v)
    s = h.summary()
    assert s["lat.count"] == 100
    assert s["lat.max"] == 1.0
    # p50 lands in the bucket holding 0.001; the reported value is the
    # bucket's upper edge, so it is within one log-step (~58% here,
    # allowing for float rounding of the edge grid) of the true value.
    assert 0.001 <= s["lat.p50"] <= 0.001 * 10 ** 0.4
    assert 0.1 <= s["lat.p99"] <= 0.1 * 10 ** 0.4
    assert s["lat.mean"] == pytest.approx((90 * 0.001 + 9 * 0.1 + 1.0) / 100)
    # Order independence: same multiset, shuffled arrival.
    h2 = Histogram(InstrumentMeta("lat", "histogram", "s"))
    for v in [1.0] + [0.1] * 9 + [0.001] * 90:
        h2.observe(v)
    s2 = h2.summary()
    assert s2["lat.mean"] == pytest.approx(s["lat.mean"])  # float sum order
    for key in ("lat.count", "lat.p50", "lat.p95", "lat.p99", "lat.max"):
        assert s2[key] == s[key]


def test_histogram_merge_is_exact():
    a = Histogram(InstrumentMeta("lat", "histogram", "s"))
    b = Histogram(InstrumentMeta("lat", "histogram", "s"))
    both = Histogram(InstrumentMeta("lat", "histogram", "s"))
    for v in (0.01, 0.02, 0.3):
        a.observe(v)
        both.observe(v)
    for v in (0.5, 0.0004):
        b.observe(v)
        both.observe(v)
    a.merge(b)
    assert a.summary() == both.summary()
    different = Histogram(InstrumentMeta("lat", "histogram", "s"),
                          edges=(0.1, 1.0))
    with pytest.raises(ValueError):
        a.merge(different)


def test_registry_flat_and_merge():
    a = MetricsRegistry()
    a.counter("bytes", unit="B").add(7)
    a.histogram("lat").observe(0.2)
    b = MetricsRegistry()
    b.counter("bytes", unit="B").add(3)
    b.histogram("lat").observe(0.4)
    b.gauge("qd").set(5)
    a.merge(b)
    flat = a.flat()
    assert flat["bytes"] == 10
    assert flat["lat.count"] == 2.0
    assert flat["qd"] == 5
