"""Observability cost and the span-measured NVMf overhead (Figure 8a).

Two acceptance claims from the subsystem design:

* near-zero cost when disabled — the instrumented build must schedule
  exactly the same events as the pre-instrumentation baseline (439 for
  the fig7a-style reference workload), and a run with observability
  attached must not be materially slower than one without;
* the paper's "< 3.5% NVMf overhead" (§IV-F) must be *measurable from
  span data alone*: summing the ``nvmf.rtt`` fabric-wait spans of a
  remote run reproduces the remote-vs-local makespan delta.
"""

import time

import pytest

from repro import obs
from repro.bench.harness import dump_files
from repro.core.config import RuntimeConfig
from repro.obs.export import total_duration
from repro.systems import build
from repro.units import KiB, MiB

# Measured on the seed tree (PR 2), before any instrumentation existed:
# microfs fleet, nprocs=4, seed=2, 32 MiB dumps -> 439 events,
# makespan 0.06173009922862135.
_BASELINE_EVENTS = 439
_BASELINE_MAKESPAN = 0.06173009922862135


def _fig7a_fleet():
    config = RuntimeConfig(
        log_region_bytes=MiB(4), state_region_bytes=MiB(16),
        hugeblock_bytes=KiB(32),
    )
    return build("microfs", nprocs=4, config=config,
                 partition_bytes=2 * MiB(32) + MiB(64), seed=2)


def test_disabled_tracer_adds_no_events():
    """Event count and makespan are bit-identical to the seed baseline."""
    with obs.capture(profile=True) as cap:
        fleet = _fig7a_fleet()
        makespan = fleet.makespan(dump_files(MiB(32)))
    assert makespan == _BASELINE_MAKESPAN
    events = cap.contexts[0].metrics.counter("sim.events").value
    assert events == _BASELINE_EVENTS
    # Self-profile lives in its own labelled channel, never in spans.
    assert cap.contexts[0].selfprof.wall_s
    assert cap.n_spans() == 0


@pytest.mark.slow
def test_disabled_observability_wall_cost():
    """Runs with obs attached (tracing off) stay near the plain-run cost."""

    def run_plain():
        fleet = _fig7a_fleet()
        fleet.env.obs = None  # sever observability entirely
        t0 = time.perf_counter()
        fleet.makespan(dump_files(MiB(32)))
        return time.perf_counter() - t0

    def run_attached():
        fleet = _fig7a_fleet()  # registry attach, NULL_TRACER
        t0 = time.perf_counter()
        fleet.makespan(dump_files(MiB(32)))
        return time.perf_counter() - t0

    for fn in (run_plain, run_attached):  # warm caches
        fn()
    plain = min(run_plain() for _ in range(5))
    attached = min(run_attached() for _ in range(5))
    # Metrics counters stay on when attached, so allow generous headroom;
    # the claim is "no blow-up", not cycle parity.
    assert attached <= 2.0 * plain + 0.01, (plain, attached)


@pytest.mark.slow
def test_nvmf_overhead_measured_from_spans():
    """Figure 8(a): < 3.5% remote overhead, reproduced from span data."""
    config = RuntimeConfig(log_region_bytes=MiB(4), state_region_bytes=MiB(16))
    nprocs, nbytes = 28, MiB(64)
    times = {}
    contexts = {}
    for name in ("microfs", "microfs-remote"):
        with obs.capture(trace=True) as cap:
            fleet = build(name, nprocs=nprocs, config=config,
                          partition_bytes=2 * nbytes + MiB(64), seed=6)
            times[name] = fleet.makespan(dump_files(nbytes))
            contexts[name] = cap.contexts[0]
    local, remote = times["microfs"], times["microfs-remote"]
    measured = remote / local - 1.0
    assert 0 <= measured < 0.035, measured  # the paper's bound

    # Span-only reconstruction: the added time is the fabric round trips,
    # i.e. the nvmf.rtt spans (pipelined, so the per-rank share bounds
    # the critical-path delta).
    rtt_total = total_duration(contexts["microfs-remote"], name="nvmf.rtt")
    assert rtt_total > 0
    span_overhead = rtt_total / nprocs / local
    assert span_overhead < 0.035, span_overhead
    # The span estimate bounds the measured delta from above (pipelining
    # overlaps some of the waits) and is the right order of magnitude.
    assert remote - local <= rtt_total
    # Counters agree with spans about what the fabric cost.
    wait = contexts["microfs-remote"].metrics.counter("nvmf.fabric_wait_s").value
    assert wait == pytest.approx(rtt_total, rel=0.05)
    # The local run pays no fabric wait at all.
    local_extra = contexts["microfs"].flat_extra()
    assert local_extra.get("nvmf.fabric_wait_s", 0.0) == 0.0
