"""Critical-path analyzer and collapsed-stack tests.

Two families:

* synthetic span graphs with hand-computable answers — exercise the
  walk, layer attribution, and self-time accounting in isolation;
* the fig7a golden — the 4-proc / seed-2 microfs fleet trace, whose
  critical-path JSONL and collapsed-stack output are committed under
  ``tests/obs/golden/`` and must stay byte-identical.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs
from repro.bench.harness import dump_files
from repro.core.config import RuntimeConfig
from repro.obs.profile import (
    IDLE_LAYER,
    collapsed_stacks,
    critical_path,
    layer_of,
    layer_table,
    load_spans_jsonl,
    spans_of,
    write_collapsed,
    write_critical_path_jsonl,
)
from repro.systems import build
from repro.units import KiB, MiB

GOLDEN = Path(__file__).parent / "golden"

_BASELINE_MAKESPAN = 0.06173009922862135


def _span(id, name, cat, t0, t1, parent=None, track="t0"):
    return {
        "id": id, "name": name, "cat": cat, "track": track,
        "parent": parent, "begin": t0, "end": t1,
    }


# ---------------------------------------------------------------------------
# synthetic graphs
# ---------------------------------------------------------------------------

def test_layer_of_maps_cats():
    assert layer_of("fabric") == "nvmf"
    assert layer_of("device") == "device"
    assert layer_of("mpi") == "mpi"
    assert layer_of("unknown-cat") == "unknown-cat"


def test_single_span_is_its_own_critical_path():
    cp = critical_path([_span(1, "work", "app", 0.0, 2.0)])
    assert cp.makespan == 2.0
    assert len(cp.segments) == 1
    assert cp.segments[0].layer == "app"
    assert cp.layers["app"].self_s == 2.0


def test_child_steals_self_time_from_parent():
    spans = [
        _span(1, "outer", "app", 0.0, 10.0),
        _span(2, "inner", "device", 4.0, 10.0, parent=1),
    ]
    cp = critical_path(spans)
    assert cp.makespan == 10.0
    # Parent keeps [0,4), child owns [4,10): exact attribution.
    assert cp.layers["app"].self_s == pytest.approx(4.0)
    assert cp.layers["device"].self_s == pytest.approx(6.0)
    # The parent is blocked for the child's span.
    assert cp.layers["app"].blocked_s == pytest.approx(6.0)


def test_gap_between_roots_is_idle():
    spans = [
        _span(1, "a", "app", 0.0, 1.0),
        _span(2, "b", "app", 3.0, 4.0),
    ]
    cp = critical_path(spans)
    assert cp.makespan == 4.0
    assert cp.layers[IDLE_LAYER].self_s == pytest.approx(2.0)
    assert cp.layers["app"].self_s == pytest.approx(2.0)


def test_deepest_latest_child_wins_the_walk():
    spans = [
        _span(1, "root", "app", 0.0, 10.0),
        _span(2, "early", "mpi", 0.0, 6.0, parent=1),
        _span(3, "late", "device", 2.0, 10.0, parent=1),
    ]
    cp = critical_path(spans)
    # The walk descends into the child covering the end of the window:
    # 'late' owns [2,10).  The remainder [0,2) belongs to the parent —
    # 'early' overlaps a child already on the chain, so it is not on
    # the critical path at all.
    assert cp.layers["device"].self_s == pytest.approx(8.0)
    assert cp.layers["app"].self_s == pytest.approx(2.0)
    assert "mpi" not in cp.layers
    # 'app' sat blocked while 'late' ran.
    assert cp.layers["app"].blocked_s == pytest.approx(8.0)


def test_self_times_reconcile_to_extent():
    spans = [
        _span(1, "root", "app", 0.0, 8.0),
        _span(2, "x", "fs", 1.0, 3.0, parent=1),
        _span(3, "y", "device", 2.5, 7.0, parent=1),
        _span(4, "z", "fabric", 9.0, 11.0),
    ]
    cp = critical_path(spans)
    total = sum(a.self_s for a in cp.layers.values())
    assert total == pytest.approx(cp.makespan, abs=1e-12)


def test_layer_table_renders():
    cp = critical_path([_span(1, "w", "app", 0.0, 1.0)])
    table = layer_table(cp, title="t")
    assert table.columns[0] == "layer"
    assert any(row[0] == "app" for row in table.rows)


def test_collapsed_stacks_weights_are_self_time_ns():
    spans = [
        _span(1, "outer", "app", 0.0, 2.0),
        _span(2, "inner", "device", 1.0, 2.0, parent=1),
    ]
    lines = collapsed_stacks(spans)
    assert lines == [
        "outer(app) 1000000000",
        "outer(app);inner(device) 1000000000",
    ]


def test_collapsed_stacks_drop_zero_self_frames():
    spans = [
        _span(1, "outer", "app", 0.0, 1.0),
        _span(2, "inner", "device", 0.0, 1.0, parent=1),
    ]
    lines = collapsed_stacks(spans)
    assert lines == ["outer(app);inner(device) 1000000000"]


# ---------------------------------------------------------------------------
# round trips
# ---------------------------------------------------------------------------

def test_jsonl_round_trip(tmp_path):
    spans = [
        _span(1, "root", "app", 0.0, 4.0),
        _span(2, "io", "device", 1.0, 3.0, parent=1),
    ]
    cp = critical_path(spans)
    out = tmp_path / "cp.jsonl"
    write_critical_path_jsonl(cp, out)
    records = [json.loads(line) for line in out.read_text().splitlines()]
    kinds = [r["record"] for r in records]
    assert kinds[0] == "summary"
    assert "layer" in kinds and "segment" in kinds
    summary = records[0]
    assert summary["makespan_s"] == pytest.approx(cp.makespan)

    spans_path = tmp_path / "spans.jsonl"
    with spans_path.open("w") as fh:
        for s in spans:
            rec = dict(s)
            rec["t0"], rec["t1"] = rec.pop("begin"), rec.pop("end")
            fh.write(json.dumps(rec) + "\n")
        fh.write(json.dumps({
            "instant": True, "name": "marker", "cat": "!mark", "t": 1.0,
        }) + "\n")
    loaded = load_spans_jsonl(spans_path)
    assert len(loaded) == 2  # the instant is skipped
    assert critical_path(loaded).makespan == pytest.approx(4.0)


def test_spans_of_reissues_ids_across_contexts():
    from types import SimpleNamespace

    from repro.obs.tracer import Span

    def _ctx(spans, now):
        return SimpleNamespace(
            tracer=SimpleNamespace(spans=spans), env=SimpleNamespace(now=now)
        )

    def _raw(sid, name, cat, t0, t1, parent=None):
        s = Span(sid, name, cat, "t0", parent, t0, None)
        s.end = t1
        return s

    a = [_raw(1, "a", "app", 0.0, 1.0), _raw(2, "b", "device", 0.2, 0.8, parent=1)]
    b = [_raw(1, "c", "app", 2.0, 3.0), _raw(2, "d", "device", 2.2, None, parent=1)]
    merged = spans_of([_ctx(a, 1.0), _ctx(b, 2.9)])
    ids = [s["id"] for s in merged]
    assert len(set(ids)) == 4
    # Open spans clamp to the context's clock.
    assert merged[-1]["end"] == 2.9
    # Parent links stay within each context after re-issue.
    by_id = {s["id"]: s for s in merged}
    for s in merged:
        if s["parent"] is not None:
            assert by_id[s["parent"]]["begin"] <= s["begin"]


# ---------------------------------------------------------------------------
# fig7a golden
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig7a_trace():
    with obs.capture(trace=True, telemetry=True) as cap:
        config = RuntimeConfig(
            log_region_bytes=MiB(4), state_region_bytes=MiB(16),
            hugeblock_bytes=KiB(32),
        )
        fleet = build(
            "microfs", nprocs=4, config=config,
            partition_bytes=2 * MiB(32) + MiB(64), seed=2,
        )
        makespan = fleet.makespan(dump_files(MiB(32)))
    return makespan, spans_of(cap.contexts)


def test_fig7a_critical_path_reconciles(fig7a_trace):
    makespan, spans = fig7a_trace
    assert makespan == _BASELINE_MAKESPAN
    cp = critical_path(spans)
    assert cp.makespan == _BASELINE_MAKESPAN
    total = sum(a.self_s for a in cp.layers.values())
    assert total == pytest.approx(cp.makespan, abs=1e-12)
    # The device layer dominates a dump-heavy trace.
    dominant = max(cp.layers.values(), key=lambda a: a.self_s)
    assert dominant.layer == "device"


def test_fig7a_critical_path_golden(fig7a_trace, tmp_path):
    _, spans = fig7a_trace
    out = tmp_path / "fig7a.critpath.jsonl"
    write_critical_path_jsonl(critical_path(spans), out)
    assert out.read_bytes() == (GOLDEN / "fig7a.critpath.jsonl").read_bytes()


def test_fig7a_collapsed_golden(fig7a_trace, tmp_path):
    _, spans = fig7a_trace
    out = tmp_path / "fig7a.collapsed"
    write_collapsed(collapsed_stacks(spans), out)
    assert out.read_bytes() == (GOLDEN / "fig7a.collapsed").read_bytes()
