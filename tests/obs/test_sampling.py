"""Wall-clock sampling profiler smoke tests.

The sampler is the one deliberately non-deterministic observability
component (see the DET001 allowlist note in the module docstring), so
these tests assert structure, not exact counts: samples accumulate
while work runs, collapsed output parses, and `top()` ranks leaves.
"""

from __future__ import annotations

import re

from repro.obs.sampling import SamplingProfiler, sample


def _busy(deadline_samples, profiler):
    # Spin until the profiler has seen us a few times (bounded).
    total = 0.0
    for _ in range(200_000):
        total += sum(i * i for i in range(200))
        if profiler.samples >= deadline_samples:
            break
    return total


def test_sampler_collects_and_formats():
    profiler = SamplingProfiler(interval_s=0.001)
    with profiler:
        _busy(5, profiler)
    assert profiler.samples > 0
    lines = profiler.collapsed()
    assert lines == sorted(lines)
    for line in lines:
        # "frame;frame;leaf <count>"
        assert re.fullmatch(r"\S.*? \d+", line), line
    total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
    assert total == profiler.samples


def test_sampler_write_and_top(tmp_path):
    profiler = sample(interval_s=0.001)
    profiler.start()
    _busy(5, profiler)
    profiler.stop()
    out = tmp_path / "host.collapsed"
    profiler.write(out)
    assert out.read_text().splitlines() == profiler.collapsed()
    ranked = profiler.top(3)
    assert 0 < len(ranked) <= 3
    # "  42.1%  leaf" lines, share descending.
    shares = [float(line.split("%", 1)[0]) for line in ranked]
    assert shares == sorted(shares, reverse=True)
    assert sum(shares) <= 100.0 + 1e-6


def test_sampler_stop_is_idempotent_and_restartable():
    profiler = SamplingProfiler(interval_s=0.001)
    profiler.start()
    profiler.stop()
    profiler.stop()  # second stop is a no-op
    profiler.start()  # and a stopped sampler can be restarted
    profiler.stop()
    assert profiler.wall_s > 0.0
