"""Engine self-telemetry: counter values, publish idempotence, and
bit-identical merges across shard counts.

The counters are *semantic* (events dispatched by class, heap traffic,
coroutine resumes, fair-share recomputes) — they must not depend on how
the work was partitioned across shards, which process executed it, or
whether a profiler was watching.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.bench.harness import dump_files
from repro.core.config import RuntimeConfig
from repro.exec import ExecutionPlan, ShardedExecutor, SimUnit
from repro.systems import build
from repro.units import KiB, MiB

_BASELINE_EVENTS = 439
_BASELINE_MAKESPAN = 0.06173009922862135


def _fig7a_run():
    config = RuntimeConfig(
        log_region_bytes=MiB(4), state_region_bytes=MiB(16),
        hugeblock_bytes=KiB(32),
    )
    fleet = build(
        "microfs", nprocs=4, config=config,
        partition_bytes=2 * MiB(32) + MiB(64), seed=2,
    )
    return fleet.makespan(dump_files(MiB(32)))


def _engine_counters(ctx):
    flat = ctx.flat_extra()
    return {k: v for k, v in sorted(flat.items()) if k.startswith("engine.")}


def test_telemetry_counters_match_engine_accounting():
    with obs.capture(telemetry=True) as cap:
        makespan = _fig7a_run()
    assert makespan == _BASELINE_MAKESPAN
    ctx = cap.contexts[0]
    env = ctx.env
    counters = _engine_counters(ctx)
    # Heap traffic reconciles exactly with the engine's own counter.
    assert counters["engine.heap.pushes"] == env.events_scheduled
    assert counters["engine.heap.pops"] == counters["engine.heap.pushes"]
    assert counters["engine.heap.pushes"] == _BASELINE_EVENTS
    # Every pop dispatches exactly one event: class counts sum to pops.
    dispatched = sum(
        v for k, v in counters.items() if k.startswith("engine.dispatch.")
    )
    assert dispatched == counters["engine.heap.pops"]
    assert counters["engine.coroutine.resumes"] > 0
    assert counters["engine.fairshare.flows"] > 0
    assert counters["engine.fairshare.recomputes"] > 0


def test_telemetry_publish_is_idempotent():
    with obs.capture(telemetry=True) as cap:
        _fig7a_run()
    ctx = cap.contexts[0]
    once = _engine_counters(ctx)
    # A second publish must not double-count.
    ctx.publish_telemetry()
    ctx.env.telemetry.publish(ctx.metrics, ctx.env)
    assert _engine_counters(ctx) == once


def test_telemetry_off_means_no_engine_counters():
    with obs.capture(telemetry=False) as cap:
        makespan = _fig7a_run()
    assert makespan == _BASELINE_MAKESPAN
    assert _engine_counters(cap.contexts[0]) == {}


def test_telemetry_does_not_perturb_the_simulation():
    with obs.capture(telemetry=True):
        with_telemetry = _fig7a_run()
    plain = _fig7a_run()
    assert with_telemetry == plain == _BASELINE_MAKESPAN


# ---------------------------------------------------------------------------
# shard-merge identity
# ---------------------------------------------------------------------------

def _fig7a_plan(n_units=4):
    units = [
        SimUnit(
            index=i, label=f"fig7a/{i}",
            fn="repro.bench.experiments:_fig7a_unit",
            params={
                "block": KiB(32), "nprocs": 4,
                "file_bytes": MiB(32), "seed": 2 + i,
            },
        )
        for i in range(n_units)
    ]
    return ExecutionPlan(
        title="fig7a-telemetry", units=units,
        reduce=lambda results: [r.payload["time_s"] for r in results],
    )


@pytest.mark.parametrize("shards", [2, 4])
def test_counters_merge_identically_across_shard_counts(shards):
    plan = _fig7a_plan()
    with obs.capture(telemetry=True) as cap_one:
        one = ShardedExecutor(1, start_method="inline").execute(plan)
    counters_one = [_engine_counters(c) for c in cap_one.contexts]

    with obs.capture(telemetry=True) as cap_n:
        many = ShardedExecutor(shards, start_method="inline").execute(plan)
    counters_n = [_engine_counters(c) for c in cap_n.contexts]

    assert one.merged.fingerprint == many.merged.fingerprint
    assert one.merged.events_scheduled == many.merged.events_scheduled
    assert one.value == many.value
    # Per-unit engine counters are bit-identical regardless of sharding
    # (context harvest order may differ, so compare as multisets).
    key = lambda c: sorted(c.items())
    assert sorted(counters_one, key=key) == sorted(counters_n, key=key)
    assert all(c["engine.heap.pushes"] > 0 for c in counters_one)
