"""Tracer unit tests: stacks, handoff, instants, and the null path."""


from repro.obs import NULL_TRACER, Tracer, tracer_of
from repro.obs.context import ObsContext, attach, capture
from repro.obs.tracer import NULL_CONTEXT, NULL_SPAN
from repro.sim import Environment


class Clock:
    """Minimal env stand-in: the tracer only needs ``now``."""

    def __init__(self):
        self.now = 0.0


def test_stack_nesting_sets_parents():
    clk = Clock()
    tr = Tracer(clk)
    with tr.span("outer", cat="t", track="a") as outer:
        clk.now = 1.0
        with tr.span("inner", cat="t", track="a") as inner:
            clk.now = 2.0
        clk.now = 3.0
    assert outer.parent is None
    assert inner.parent == outer.id
    assert (inner.begin, inner.end) == (1.0, 2.0)
    assert (outer.begin, outer.end) == (0.0, 3.0)


def test_tracks_are_independent_stacks():
    tr = Tracer(Clock())
    with tr.span("a1", cat="t", track="a"):
        with tr.span("b1", cat="t", track="b") as b1:
            pass
    # b1 opened while a1 was open, but on its own track: no parent.
    assert b1.parent is None


def test_explicit_parent_overrides_stack():
    tr = Tracer(Clock())
    root = tr.begin("root", cat="t", track="x")
    with tr.span("child", cat="t", track="other", parent=root) as child:
        pass
    assert child.parent == root.id


def test_begin_end_merges_attrs():
    clk = Clock()
    tr = Tracer(clk)
    s = tr.begin("io", cat="t", track="a", nbytes=4096)
    clk.now = 2.5
    tr.end(s, coalesced=True)
    assert s.end == 2.5
    assert s.attrs == {"nbytes": 4096, "coalesced": True}


def test_handoff_is_claim_once():
    tr = Tracer(Clock())
    s = tr.begin("caller", cat="t", track="a")
    tr.handoff(s)
    assert tr.take_handoff() is s
    assert tr.take_handoff() is None


def test_missed_close_is_tolerated():
    clk = Clock()
    tr = Tracer(clk)
    outer = tr.span("outer", cat="t", track="a")
    tr.span("forgotten", cat="t", track="a")  # never closed
    clk.now = 5.0
    outer.__exit__(None, None, None)
    forgotten = tr.spans[1]
    assert forgotten.end == 5.0  # clamped when the outer span popped past it
    assert tr.current("a") is None


def test_instants_are_zero_width():
    clk = Clock()
    clk.now = 7.0
    tr = Tracer(clk)
    i = tr.instant("fault.inject", cat="fault", track="faults", kind="x")
    assert i.begin == i.end == 7.0
    assert tr.instants == [i]
    assert tr.spans == []


def test_close_open_spans_clamps_to_now():
    clk = Clock()
    tr = Tracer(clk)
    s = tr.begin("open", cat="t", track="a")
    clk.now = 9.0
    tr.close_open_spans()
    assert s.end == 9.0


def test_span_ids_are_deterministic():
    def run():
        tr = Tracer(Clock())
        with tr.span("a", cat="t", track="x"):
            tr.begin("b", cat="t", track="y")
        return [(s.id, s.name, s.parent) for s in tr.spans]

    assert run() == run()


# -- disabled path ---------------------------------------------------------


def test_null_tracer_returns_shared_singletons():
    assert NULL_TRACER.enabled is False
    # No per-call allocation: every call returns the same object.
    cm1 = NULL_TRACER.span("x", cat="t", track="a", big=1)
    cm2 = NULL_TRACER.span("y", cat="t", track="b")
    assert cm1 is cm2 is NULL_CONTEXT
    assert NULL_TRACER.begin("x", cat="t", track="a") is NULL_SPAN
    assert NULL_TRACER.instant("x", cat="t", track="a") is NULL_SPAN
    with cm1 as s:
        assert s is NULL_SPAN
    assert NULL_TRACER.take_handoff() is None
    assert NULL_TRACER.spans == [] and NULL_TRACER.instants == []


def test_tracer_of_guard():
    env = Environment()
    assert tracer_of(env) is None  # no context attached
    ctx = attach(env, label="t")
    assert ctx.tracer is NULL_TRACER
    assert tracer_of(env) is None  # attached but tracing off
    ctx.enable_tracing()
    assert tracer_of(env) is ctx.tracer
    assert tracer_of(env).enabled


def test_attach_is_idempotent_and_session_scoped():
    env = Environment()
    with capture(trace=True) as cap:
        ctx = attach(env, label="run")
        assert ctx.tracing  # session switch inherited
        assert attach(env) is ctx  # idempotent
        assert cap.contexts == [ctx]
    env2 = Environment()
    ctx2 = attach(env2)
    assert not ctx2.tracing  # outside a session: off by default


def test_obscontext_flat_extra_roundtrip():
    ctx = ObsContext(Environment(), tracing=False)
    ctx.metrics.counter("x.bytes", unit="B").add(10)
    ctx.metrics.histogram("x.lat").observe(0.5)
    flat = ctx.flat_extra()
    assert flat["x.bytes"] == 10
    assert flat["x.lat.count"] == 1.0
