"""Tests for the Slurm-like scheduler and its namespace GRES."""

import numpy as np
import pytest

from repro.errors import AllocationError, SchedulerError
from repro.nvme import SSD
from repro.scheduler import JobSpec, JobState, SlurmScheduler
from repro.sim import Environment
from repro.topology import paper_testbed
from repro.units import GiB

from tests.conftest import deterministic_spec


def make_scheduler():
    env = Environment()
    cluster = paper_testbed()
    sched = SlurmScheduler(env, cluster)
    for node in cluster.storage_nodes():
        sched.register_ssd(node.name, SSD(env, deterministic_spec(), f"nvme-{node.name}",
                                          rng=np.random.default_rng(0)))
    return env, sched


def test_jobspec_validation():
    with pytest.raises(SchedulerError):
        JobSpec(name="bad", user="u", nprocs=0)
    with pytest.raises(SchedulerError):
        JobSpec(name="bad", user="u", nprocs=1, storage_devices=0)


def test_ratio_rule_device_counts():
    """§III-F: process:SSD ratio in 56-112."""
    assert JobSpec("j", "u", nprocs=28).storage_devices_needed() == 1
    assert JobSpec("j", "u", nprocs=56).storage_devices_needed() == 1
    assert JobSpec("j", "u", nprocs=112).storage_devices_needed() == 2
    assert JobSpec("j", "u", nprocs=448).storage_devices_needed() == 8
    assert JobSpec("j", "u", nprocs=448, storage_devices=3).storage_devices_needed() == 3


def test_compute_allocation_block_placement():
    env, sched = make_scheduler()
    job = sched.submit(JobSpec("j", "u", nprocs=56, procs_per_node=28))
    assert job.state is JobState.RUNNING
    assert len(job.compute_nodes) == 2
    assert job.rank_to_node(0) == job.compute_nodes[0]
    assert job.rank_to_node(28) == job.compute_nodes[1]
    with pytest.raises(SchedulerError):
        job.rank_to_node(56)


def test_oversized_job_rejected():
    env, sched = make_scheduler()
    with pytest.raises(AllocationError):
        sched.submit(JobSpec("huge", "u", nprocs=16 * 28 + 1, procs_per_node=28))


def test_job_queues_when_cluster_busy():
    env, sched = make_scheduler()
    first = sched.submit(JobSpec("a", "u", nprocs=16 * 28, procs_per_node=28))
    assert first.state is JobState.RUNNING
    second = sched.submit(JobSpec("b", "u", nprocs=28, procs_per_node=28))
    assert second.state is JobState.PENDING


def test_storage_grants_create_namespaces():
    env, sched = make_scheduler()
    job = sched.submit(JobSpec("j", "u", nprocs=28))
    grants = sched.grant_storage(job, ["stor00", "stor01"], bytes_per_device=GiB(4))
    assert len(grants) == 2
    for grant in grants:
        assert grant.namespace.owner_job == "j"
        assert grant.namespace.nbytes == GiB(4)


def test_grant_on_unregistered_node_rejected():
    env, sched = make_scheduler()
    job = sched.submit(JobSpec("j", "u", nprocs=28))
    with pytest.raises(AllocationError):
        sched.grant_storage(job, ["comp00"], bytes_per_device=GiB(1))


def test_complete_releases_everything():
    env, sched = make_scheduler()
    free_before = len(sched.free_compute_nodes())
    job = sched.submit(JobSpec("j", "u", nprocs=28))
    grants = sched.grant_storage(job, ["stor00"], bytes_per_device=GiB(4))
    ssd = grants[0].ssd
    used = ssd.free_bytes()
    sched.complete(job)
    assert job.state is JobState.COMPLETED
    assert len(sched.free_compute_nodes()) == free_before
    assert ssd.free_bytes() == used + GiB(4)


def test_double_complete_rejected():
    env, sched = make_scheduler()
    job = sched.submit(JobSpec("j", "u", nprocs=28))
    sched.complete(job)
    with pytest.raises(SchedulerError):
        sched.complete(job)


def test_failed_job_state():
    env, sched = make_scheduler()
    job = sched.submit(JobSpec("j", "u", nprocs=28))
    sched.complete(job, failed=True)
    assert job.state is JobState.FAILED
