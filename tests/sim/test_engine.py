"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc():
        yield env.timeout(1.5)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [1.5]
    assert env.now == 1.5


def test_timeout_value_passthrough():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(0.1, value="hello")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["hello"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(3.0, "c"))
    env.process(proc(1.0, "a"))
    env.process(proc(2.0, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_deterministic():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in range(10):
        env.process(proc(tag))
    env.run()
    assert order == list(range(10))


def test_process_join_returns_value():
    env = Environment()
    results = []

    def child():
        yield env.timeout(2.0)
        return 42

    def parent():
        value = yield env.process(child())
        results.append((env.now, value))

    env.process(parent())
    env.run()
    assert results == [(2.0, 42)]


def test_process_exception_propagates_to_joiner():
    env = Environment()
    caught = []

    def child():
        yield env.timeout(1.0)
        raise ValueError("boom")

    def parent():
        try:
            yield env.process(child())
        except ValueError as exc:
            caught.append(str(exc))

    env.process(parent())
    env.run()
    assert caught == ["boom"]


def test_orphan_process_failure_aborts_run():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        raise ValueError("unheard scream")

    env.process(child())
    with pytest.raises(ValueError, match="unheard scream"):
        env.run()


def test_run_until_time_horizon():
    env = Environment()
    fired = []

    def proc():
        yield env.timeout(10.0)
        fired.append(True)

    env.process(proc())
    env.run(until=5.0)
    assert env.now == 5.0
    assert fired == []
    env.run()
    assert fired == [True]


def test_manual_event_succeed():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append((env.now, value))

    def opener():
        yield env.timeout(3.0)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert seen == [(3.0, "open")]


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def proc():
        yield env.all_of([env.timeout(1.0), env.timeout(5.0), env.timeout(3.0)])
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [5.0]


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def proc():
        yield env.any_of([env.timeout(4.0), env.timeout(2.0)])
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [2.0]


def test_all_of_empty_fires_immediately():
    env = Environment()
    times = []

    def proc():
        yield env.all_of([])
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [0.0]


def test_yield_already_processed_event():
    env = Environment()
    order = []

    def proc():
        done = env.timeout(1.0)
        yield env.timeout(2.0)  # `done` fires and is processed meanwhile
        value = yield done
        order.append((env.now, value))

    env.process(proc())
    env.run()
    assert order == [(2.0, None)]


def test_interrupt_delivers_cause():
    env = Environment()
    outcomes = []

    def sleeper():
        try:
            yield env.timeout(100.0)
            outcomes.append("slept")
        except Interrupt as intr:
            outcomes.append(("interrupted", env.now, intr.cause))

    def interrupter(target):
        yield env.timeout(2.5)
        target.interrupt(cause="power-loss")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert outcomes == [("interrupted", 2.5, "power-loss")]


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick():
        yield env.timeout(0.1)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_run_until_complete():
    env = Environment()

    def proc():
        yield env.timeout(7.0)
        return "done"

    result = env.run_until_complete(env.process(proc()))
    assert result == "done"
    assert env.now == 7.0


def test_nested_subgenerators_via_yield_from():
    env = Environment()
    trail = []

    def inner():
        yield env.timeout(1.0)
        trail.append("inner")
        return 10

    def outer():
        value = yield from inner()
        trail.append(("outer", value))
        yield env.timeout(1.0)
        return value * 2

    result = env.run_until_complete(env.process(outer()))
    assert result == 20
    assert trail == ["inner", ("outer", 10)]
    assert env.now == 2.0


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_clock_monotonicity_under_many_processes():
    env = Environment()
    stamps = []

    def proc(i):
        yield env.timeout(i % 7 * 0.1)
        stamps.append(env.now)
        yield env.timeout(0.05)
        stamps.append(env.now)

    for i in range(50):
        env.process(proc(i))
    env.run()
    assert stamps == sorted(stamps)
