"""Unit tests for the fluid fair-share bandwidth server."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, FairShareServer


def run_transfers(env, server, specs):
    """specs: list of (start_time, nbytes, cap). Returns completion times."""
    completions = {}

    def client(i, start, nbytes, cap):
        yield env.timeout(start)
        yield server.transfer(nbytes, cap=cap)
        completions[i] = env.now

    for i, (start, nbytes, cap) in enumerate(specs):
        env.process(client(i, start, nbytes, cap))
    env.run()
    return completions


def test_single_flow_full_capacity():
    env = Environment()
    server = FairShareServer(env, capacity=100.0)
    done = run_transfers(env, server, [(0.0, 1000.0, None)])
    assert done[0] == pytest.approx(10.0)


def test_two_equal_flows_share_equally():
    env = Environment()
    server = FairShareServer(env, capacity=100.0)
    done = run_transfers(env, server, [(0.0, 500.0, None), (0.0, 500.0, None)])
    # Each gets 50 B/s -> both finish at t=10.
    assert done[0] == pytest.approx(10.0)
    assert done[1] == pytest.approx(10.0)


def test_short_flow_releases_capacity_to_long_flow():
    env = Environment()
    server = FairShareServer(env, capacity=100.0)
    done = run_transfers(env, server, [(0.0, 1000.0, None), (0.0, 200.0, None)])
    # Phase 1: both at 50 B/s until short flow (200B) ends at t=4.
    assert done[1] == pytest.approx(4.0)
    # Long flow: 200B done by t=4, 800B left at 100 B/s -> t=12.
    assert done[0] == pytest.approx(12.0)


def test_late_arrival_rerates_inflight_flow():
    env = Environment()
    server = FairShareServer(env, capacity=100.0)
    done = run_transfers(env, server, [(0.0, 1000.0, None), (5.0, 250.0, None)])
    # Flow 0 alone until t=5 (500B moved), then 50 B/s each.
    # Flow 1: 250B at 50 B/s -> ends t=10. Flow 0: 250B left at t=10 -> t=12.5.
    assert done[1] == pytest.approx(10.0)
    assert done[0] == pytest.approx(12.5)


def test_rate_cap_limits_flow():
    env = Environment()
    server = FairShareServer(env, capacity=100.0)
    done = run_transfers(env, server, [(0.0, 100.0, 10.0)])
    assert done[0] == pytest.approx(10.0)


def test_capped_flow_leaves_capacity_for_others():
    env = Environment()
    server = FairShareServer(env, capacity=100.0)
    done = run_transfers(
        env, server, [(0.0, 100.0, 10.0), (0.0, 900.0, None)]
    )
    # Capped flow: 10 B/s -> t=10. Uncapped gets 90 B/s -> 900B at t=10.
    assert done[0] == pytest.approx(10.0)
    assert done[1] == pytest.approx(10.0)


def test_many_flows_aggregate_to_capacity():
    env = Environment()
    server = FairShareServer(env, capacity=100.0)
    n = 20
    done = run_transfers(env, server, [(0.0, 100.0, None)] * n)
    # Total 2000B at 100 B/s = 20s; symmetric flows end together.
    for i in range(n):
        assert done[i] == pytest.approx(20.0)


def test_zero_byte_transfer_completes_immediately():
    env = Environment()
    server = FairShareServer(env, capacity=100.0)
    event = server.transfer(0)
    assert event.triggered


def test_negative_transfer_rejected():
    env = Environment()
    server = FairShareServer(env, capacity=100.0)
    with pytest.raises(SimulationError):
        server.transfer(-1)


def test_invalid_capacity_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        FairShareServer(env, capacity=0.0)


def test_bytes_served_accounting():
    env = Environment()
    server = FairShareServer(env, capacity=100.0)
    run_transfers(env, server, [(0.0, 300.0, None), (1.0, 200.0, None)])
    assert server.bytes_served == pytest.approx(500.0)


def test_utilisation_full_when_saturated():
    env = Environment()
    server = FairShareServer(env, capacity=100.0)
    run_transfers(env, server, [(0.0, 1000.0, None)])
    assert server.utilisation(since=0.0) == pytest.approx(1.0)


def test_utilisation_partial_with_cap():
    env = Environment()
    server = FairShareServer(env, capacity=100.0)
    run_transfers(env, server, [(0.0, 100.0, 50.0)])
    # 2s at 50/100 capacity -> 0.5.
    assert server.utilisation(since=0.0) == pytest.approx(0.5)


def test_staggered_flows_water_filling_three_way():
    env = Environment()
    server = FairShareServer(env, capacity=90.0)
    done = run_transfers(
        env,
        server,
        [(0.0, 900.0, None), (0.0, 900.0, None), (0.0, 90.0, 10.0)],
    )
    # Capped flow: 10 B/s the whole time -> ends t=9.
    assert done[2] == pytest.approx(9.0)
    # Others: 40 B/s until t=9 (360B each), then 45 B/s for 540B -> 12s more.
    assert done[0] == pytest.approx(21.0)
    assert done[1] == pytest.approx(21.0)


def test_fp_dust_never_schedules_negative_horizon():
    """Regression: an arrival landing just as another flow finishes could
    leave ``remaining`` at ~-1e-16, so the next-completion horizon went
    negative and ``env.timeout`` raised mid-simulation. Found by
    test_deterministic_replay with ops [2, 0, 2, 1, 2, 1, 2, 2, 0]."""
    env = Environment()
    server = FairShareServer(env, capacity=100.0)
    ops = [2, 0, 2, 1, 2, 1, 2, 2, 0]
    done = []

    def client(i, kind):
        yield env.timeout(i * 0.1)
        if kind == 0:
            yield server.transfer(50.0)
        elif kind == 1:
            yield env.timeout(0.05)
        else:
            yield server.transfer(25.0, cap=10.0)
        done.append(i)

    for i, kind in enumerate(ops):
        env.process(client(i, kind))
    env.run()
    assert sorted(done) == list(range(len(ops)))
