"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, FairShareServer, Resource


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=40))
def test_events_always_fire_in_order(delays):
    env = Environment()
    fired = []

    def proc(d):
        yield env.timeout(d)
        fired.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert env.now == max(delays)


@settings(max_examples=40, deadline=None)
@given(
    transfers=st.lists(
        st.tuples(st.floats(0.0, 5.0), st.floats(1.0, 1000.0)),
        min_size=1, max_size=25,
    ),
    capacity=st.floats(10.0, 1000.0),
)
def test_fairshare_conserves_work(transfers, capacity):
    """Total bytes served equals total bytes submitted, and the makespan
    is never below the work-conserving lower bound."""
    env = Environment()
    server = FairShareServer(env, capacity=capacity)
    done = []

    def client(start, nbytes):
        yield env.timeout(start)
        yield server.transfer(nbytes)
        done.append(env.now)

    for start, nbytes in transfers:
        env.process(client(start, nbytes))
    env.run()
    total = sum(n for _s, n in transfers)
    assert server.bytes_served == pytest_approx(total)
    last_arrival = max(s for s, _n in transfers)
    lower_bound = total / capacity  # all work at full capacity
    # Rate integration accumulates *relative* float error (near-
    # simultaneous arrivals make the service interval a ~1e-8-wide
    # difference of large timestamps), so the slack must be relative too.
    assert max(done) >= lower_bound * (1.0 - 1e-6) - 1e-9
    assert max(done) <= last_arrival + lower_bound * (1.0 + 1e-6) + 1e-6


def pytest_approx(value, rel=1e-6):
    import pytest

    return pytest.approx(value, rel=rel)


@settings(max_examples=40, deadline=None)
@given(
    jobs=st.lists(st.floats(0.01, 2.0), min_size=1, max_size=30),
    capacity=st.integers(1, 5),
)
def test_resource_work_conservation(jobs, capacity):
    """FCFS server pool: makespan within [work/capacity, sum(work)]."""
    env = Environment()
    server = Resource(env, capacity=capacity)

    def client(duration):
        yield from server.serve(duration)

    for duration in jobs:
        env.process(client(duration))
    env.run()
    total = sum(jobs)
    assert env.now >= max(max(jobs), total / capacity) - 1e-9
    assert env.now <= total + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    seed_ops=st.lists(st.integers(0, 2), min_size=2, max_size=20),
)
def test_deterministic_replay(seed_ops):
    """Two identical environments produce identical timelines."""

    def build():
        env = Environment()
        server = FairShareServer(env, capacity=100.0)
        trace = []

        def client(i, kind):
            yield env.timeout(i * 0.1)
            if kind == 0:
                yield server.transfer(50.0)
            elif kind == 1:
                yield env.timeout(0.05)
            else:
                yield server.transfer(25.0, cap=10.0)
            trace.append((i, env.now))

        for i, kind in enumerate(seed_ops):
            env.process(client(i, kind))
        env.run()
        return trace

    assert build() == build()
