"""Unit tests for Resource and Store."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Resource, Store


def test_resource_serializes_at_capacity_one():
    env = Environment()
    server = Resource(env, capacity=1)
    finish_times = []

    def client(i):
        yield from server.serve(1.0)
        finish_times.append((i, env.now))

    for i in range(3):
        env.process(client(i))
    env.run()
    assert finish_times == [(0, 1.0), (1, 2.0), (2, 3.0)]


def test_resource_parallel_at_higher_capacity():
    env = Environment()
    server = Resource(env, capacity=3)
    finish_times = []

    def client(i):
        yield from server.serve(1.0)
        finish_times.append(env.now)

    for i in range(3):
        env.process(client(i))
    env.run()
    assert finish_times == [1.0, 1.0, 1.0]


def test_resource_fifo_queue_order():
    env = Environment()
    server = Resource(env, capacity=1)
    order = []

    def client(i, arrival):
        yield env.timeout(arrival)
        yield from server.serve(1.0)
        order.append(i)

    env.process(client(0, 0.0))
    env.process(client(1, 0.1))
    env.process(client(2, 0.2))
    env.run()
    assert order == [0, 1, 2]


def test_release_without_request_raises():
    env = Environment()
    server = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        server.release()


def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_wait_time_accounting():
    env = Environment()
    server = Resource(env, capacity=1)

    def client():
        yield from server.serve(2.0)

    env.process(client())
    env.process(client())
    env.run()
    # Second client waited exactly 2.0s.
    assert server.total_wait_time == pytest.approx(2.0)
    assert server.total_requests == 2


def test_resource_busy_time_integral():
    env = Environment()
    server = Resource(env, capacity=2)

    def client():
        yield from server.serve(4.0)

    env.process(client())
    env.run()
    # One of two slots busy for 4s -> busy integral 2.0 "capacity-seconds".
    assert server.busy_time() == pytest.approx(2.0)


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    store.put("x")
    env.process(consumer())
    env.run()
    assert got == [(0.0, "x")]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(5.0)
        store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(5.0, "late")]


def test_store_fifo_matching():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    env.process(consumer("first"))
    env.process(consumer("second"))

    def producer():
        yield env.timeout(1.0)
        store.put(1)
        store.put(2)

    env.process(producer())
    env.run()
    assert got == [("first", 1), ("second", 2)]
