"""Conservative window sync: BoundaryChannel + ShardCoordinator."""

import pytest

from repro.errors import SimulationError
from repro.sim import BoundaryChannel, Environment, ShardCoordinator
from repro.sim.shard import DEFAULT_LOOKAHEAD_S, fabric_lookahead


def _ping_pong(rounds=5, latency=1e-3, lookahead=None):
    """Two shards bouncing a counter; returns (coordinator, log)."""
    a, b = Environment(), Environment()
    ab = BoundaryChannel(a, b, latency, name="a->b")
    ba = BoundaryChannel(b, a, latency, name="b->a")
    coord = ShardCoordinator([a, b], [ab, ba], lookahead=lookahead)
    log = []

    def side_a():
        ab.send(0)
        for _ in range(rounds):
            value = yield ba.recv()
            log.append(("a", a.now, value))
            ab.send(value + 1)

    def side_b():
        for _ in range(rounds):
            value = yield ab.recv()
            log.append(("b", b.now, value))
            ba.send(value + 1)

    a.process(side_a())
    b.process(side_b())
    return coord, log


def test_ping_pong_alternates_and_respects_latency():
    coord, log = _ping_pong(rounds=4, latency=1e-3)
    coord.run()
    # b sees the evens, a the odds; each hop costs exactly one latency.
    assert [(who, v) for who, _, v in log] == [
        ("b", 0), ("a", 1), ("b", 2), ("a", 3),
        ("b", 4), ("a", 5), ("b", 6), ("a", 7),
    ]
    for i, (_, t, _v) in enumerate(log):
        assert t == pytest.approx((i + 1) * 1e-3)
    assert coord.drained()
    assert coord.windows > 0


def test_messages_never_land_inside_their_own_window():
    # With lookahead == latency, a message sent at window start arrives
    # exactly one window later — the conservative bound is tight.
    coord, log = _ping_pong(rounds=3, latency=1e-3)
    coord.run()
    deliveries = [t for _, t, _ in log]
    assert all(b - a >= 1e-3 - 1e-12 for a, b in zip(deliveries, deliveries[1:]))


def test_smaller_lookahead_only_costs_windows_not_results():
    coord_tight, log_tight = _ping_pong(rounds=6, latency=1e-3)
    coord_tight.run()
    coord_small, log_small = _ping_pong(rounds=6, latency=1e-3, lookahead=0.25e-3)
    coord_small.run()
    assert log_tight == log_small
    # The coordinator skips empty spans, so a smaller lookahead can only
    # add window turns, never change what happens inside them.
    assert coord_small.windows >= coord_tight.windows
    assert coord_tight.fingerprint_inputs() == coord_small.fingerprint_inputs()


def test_same_model_is_bit_identical_across_runs():
    runs = []
    for _ in range(2):
        coord, log = _ping_pong(rounds=5, latency=2e-4)
        coord.run()
        runs.append((log, coord.fingerprint_inputs(), coord.windows))
    assert runs[0] == runs[1]


def test_lookahead_above_channel_floor_is_rejected():
    a, b = Environment(), Environment()
    chan = BoundaryChannel(a, b, 1e-4)
    with pytest.raises(SimulationError):
        ShardCoordinator([a, b], [chan], lookahead=1e-3)


def test_channel_needs_positive_latency():
    a, b = Environment(), Environment()
    with pytest.raises(SimulationError):
        BoundaryChannel(a, b, 0.0)


def test_foreign_channel_endpoint_is_rejected():
    a, b, c = Environment(), Environment(), Environment()
    chan = BoundaryChannel(a, c, 1e-3)
    with pytest.raises(SimulationError):
        ShardCoordinator([a, b], [chan])


def test_single_shard_no_channels_matches_plain_run():
    def worker(env, out):
        for i in range(3):
            yield env.timeout(0.5)
            out.append(env.now)

    plain_env, plain_out = Environment(), []
    plain_env.process(worker(plain_env, plain_out))
    plain_env.run()

    sharded_env, sharded_out = Environment(), []
    sharded_env.process(worker(sharded_env, sharded_out))
    coord = ShardCoordinator([sharded_env])
    coord.run()
    assert sharded_out == plain_out
    assert sharded_env.now == plain_env.now
    assert sharded_env.events_scheduled == plain_env.events_scheduled


def test_run_until_stops_before_the_horizon():
    coord, log = _ping_pong(rounds=10, latency=1e-3)
    coord.run(until=3.5e-3)
    assert not coord.drained()  # work remains past the horizon
    assert all(t < 3.5e-3 for _, t, _ in log)
    coord.run()  # and it can resume to completion
    assert coord.drained()
    assert len(log) == 20  # every hop (10 per side) eventually happens


def test_send_buffers_until_recv_and_recv_waits_for_send():
    a, b = Environment(), Environment()
    chan = BoundaryChannel(a, b, 1e-3)
    coord = ShardCoordinator([a, b], [chan])
    seen = []

    def sender():
        chan.send("early")
        yield a.timeout(5e-3)
        chan.send("late")

    def receiver():
        yield b.timeout(2e-3)  # "early" already delivered: buffered
        first = yield chan.recv()
        seen.append((b.now, first))
        second = yield chan.recv()  # not yet sent: getter path
        seen.append((b.now, second))

    a.process(sender())
    b.process(receiver())
    coord.run()
    assert seen[0] == (pytest.approx(2e-3), "early")
    assert seen[1] == (pytest.approx(6e-3), "late")


def test_coordinator_channel_helper_lowers_lookahead():
    a, b = Environment(), Environment()
    coord = ShardCoordinator([a, b])
    assert coord.lookahead == DEFAULT_LOOKAHEAD_S
    chan = coord.channel(0, 1, latency=1e-6, name="fastpath")
    assert chan in coord.channels
    assert coord.lookahead == 1e-6


def test_fabric_lookahead_prefers_measured_rtt():
    class Fabric:
        def round_trip(self, src, dst):
            return 3.2e-6

    assert fabric_lookahead(Fabric(), "n0", "n1") == 3.2e-6
    assert fabric_lookahead(object(), "n0", "n1") == DEFAULT_LOOKAHEAD_S

    class Broken:
        def round_trip(self, src, dst):
            return 0.0

    assert fabric_lookahead(Broken(), "n0", "n1") == DEFAULT_LOOKAHEAD_S
