"""The legacy repro.sim.trace aliases warn exactly once, at import."""

import importlib
import sys
import warnings


def _fresh_import():
    sys.modules.pop("repro.sim.trace", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        module = importlib.import_module("repro.sim.trace")
    return module, caught


def test_import_warns_exactly_once_and_points_at_obs_metrics():
    module, caught = _fresh_import()
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    message = str(deprecations[0].message)
    assert "repro.sim.trace" in message
    assert "repro.obs.metrics" in message
    # The aliases still resolve to the real classes.
    from repro.obs.metrics import Counter, TraceRecorder

    assert module.Counter is Counter
    assert module.TraceRecorder is TraceRecorder


def test_cached_reimport_does_not_warn_again():
    _fresh_import()  # prime sys.modules
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        importlib.import_module("repro.sim.trace")
    assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]


def test_package_shortcut_does_not_warn():
    # ``from repro.sim import Counter`` goes straight to obs.metrics.
    sys.modules.pop("repro.sim.trace", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.sim  # noqa: F401 - the import is the test

        _ = repro.sim.Counter
    assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]
