"""Tests for the storage-system registry (:mod:`repro.systems`)."""

import pytest

from repro import systems
from repro.errors import UnknownSystem
from repro.systems import registry
from repro.units import MiB

NBYTES = MiB(8)

# Minimal provisioning per backend for a 2-rank round-trip.
BUILD_ARGS = {
    "nvmecr": dict(devices=2, bytes_per_device=4 * NBYTES + MiB(128)),
    "nvmecr-raft": dict(devices=2, bytes_per_device=4 * NBYTES + MiB(128)),
    "nvmecr-tiered": dict(devices=2, bytes_per_device=4 * NBYTES + MiB(128)),
    "microfs": dict(partition_bytes=4 * NBYTES + MiB(64)),
    "microfs-remote": dict(partition_bytes=4 * NBYTES + MiB(64)),
    "orangefs": dict(namespace_bytes=8 * NBYTES + MiB(64)),
    "glusterfs": dict(namespace_bytes=8 * NBYTES + MiB(64)),
    "crail": dict(namespace_bytes=8 * NBYTES + MiB(64)),
    "lustre": dict(),
    "burstfs": dict(namespace_bytes=4 * NBYTES + MiB(64)),
    "xfs": dict(bytes_per_client=2 * NBYTES + MiB(64)),
    "ext4": dict(bytes_per_client=2 * NBYTES + MiB(64)),
    "spdk": dict(bytes_per_client=2 * NBYTES + MiB(64)),
}


def test_every_builtin_is_registered():
    assert sorted(BUILD_ARGS) == systems.names()


def test_specs_carry_unique_shorts_and_kinds():
    specs = systems.specs()
    shorts = [s.short for s in specs]
    assert len(set(shorts)) == len(shorts)
    assert {s.kind for s in specs} <= {"runtime", "distributed", "kernel", "local"}
    for spec in specs:
        assert spec.description


def test_unknown_system_lists_known_names():
    with pytest.raises(UnknownSystem, match="glusterfs"):
        systems.get("lustre-on-mars")


def test_build_unknown_raises():
    with pytest.raises(UnknownSystem):
        systems.build("nope", nprocs=2)


def test_duplicate_registration_rejected():
    with pytest.raises(UnknownSystem, match="duplicate"):
        systems.register(
            "nvmecr", title="x", short="x", kind="local", description="x"
        )(lambda **kw: None)


def test_handle_spec_backlink():
    handle = systems.build("glusterfs", nprocs=2, namespace_bytes=MiB(256))
    assert handle.spec is systems.get("glusterfs")
    assert handle.name == "glusterfs"


@pytest.mark.parametrize("name", sorted(BUILD_ARGS))
def test_round_trip_on_every_backend(name):
    """Each backend writes, fsyncs, and reads back a file per rank."""
    handle = systems.build(name, nprocs=2, seed=3, **BUILD_ARGS[name])

    def rank_main(shim, comm):
        path = f"/rt{comm.rank}.dat"
        yield from comm.barrier()
        fd = yield from shim.open(path, "w")
        yield from shim.write(fd, NBYTES)
        yield from shim.fsync(fd)
        yield from shim.close(fd)
        yield from comm.barrier()
        fd = yield from shim.open(path, "r")
        pieces = yield from shim.read(fd, NBYTES)
        yield from shim.close(fd)
        return sum(p.nbytes for p in pieces)

    results = handle.run_ranks(rank_main)
    assert results == [NBYTES, NBYTES]
    assert handle.env.now > 0


@pytest.mark.parametrize("name", ["glusterfs", "orangefs", "crail"])
def test_distributed_backends_report_load(name):
    handle = systems.build(name, nprocs=2, seed=3, **BUILD_ARGS[name])

    def rank_main(shim, comm):
        fd = yield from shim.open(f"/l{comm.rank}.dat", "w")
        yield from shim.write(fd, NBYTES)
        yield from shim.fsync(fd)
        yield from shim.close(fd)
        return None

    handle.run_ranks(rank_main)
    loads = handle.load_per_server()
    assert sum(loads) >= 2 * NBYTES


def test_runtime_system_has_no_makespan_driver():
    handle = systems.build("nvmecr", nprocs=2, **BUILD_ARGS["nvmecr"])
    with pytest.raises(UnknownSystem, match="run_ranks"):
        handle.makespan(lambda i, c: iter(()))


def test_aggregate_bandwidth_positive_everywhere():
    for name in systems.names():
        handle = systems.build(name, nprocs=2, seed=3, **BUILD_ARGS[name])
        assert handle.aggregate_write_bandwidth() > 0
        assert handle.aggregate_read_bandwidth() > 0


def test_third_party_registration_hook():
    """A new backend registers, builds, runs, and is listed."""

    @systems.register(
        "loopback-test", title="Loopback", short="loop", kind="local",
        description="microfs under another name (test-only)",
    )
    def _build_loopback(**kwargs):
        return registry.get("microfs").builder(**kwargs)

    try:
        assert "loopback-test" in systems.names()
        handle = systems.build(
            "loopback-test", nprocs=1, partition_bytes=4 * NBYTES + MiB(64)
        )
        elapsed = handle.makespan(_dump_one())
        assert elapsed > 0
    finally:
        del registry._REGISTRY["loopback-test"]
    assert "loopback-test" not in systems.names()


def _dump_one():
    def work(i, client):
        fd = yield from client.open(f"/d{i}.dat", "w")
        yield from client.write(fd, NBYTES)
        yield from client.close(fd)

    return work
