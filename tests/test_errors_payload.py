"""Tests for the error hierarchy and Payload semantics."""

import pytest

from repro import errors
from repro.errors import InvalidCommand
from repro.nvme.commands import Command, Opcode, Payload


def test_fs_errors_carry_errno_names():
    cases = {
        errors.FileNotFound: "ENOENT",
        errors.FileExists: "EEXIST",
        errors.NotADirectory: "ENOTDIR",
        errors.IsADirectory: "EISDIR",
        errors.DirectoryNotEmpty: "ENOTEMPTY",
        errors.BadFileDescriptor: "EBADF",
        errors.NoSpace: "ENOSPC",
        errors.PermissionDenied: "EACCES",
        errors.InvalidArgument: "EINVAL",
    }
    for cls, name in cases.items():
        assert cls.errno_name == name
        assert issubclass(cls, errors.FSError)
        assert issubclass(cls, errors.ReproError)


def test_hierarchy_roots():
    assert issubclass(errors.DevicePoweredOff, errors.DeviceError)
    assert issubclass(errors.Deadlock, errors.SimulationError)
    assert issubclass(errors.AllocationError, errors.SchedulerError)


# -- Payload ---------------------------------------------------------------------


def test_payload_bytes_mode():
    p = Payload.of_bytes(b"hello")
    assert not p.is_synthetic
    assert p.nbytes == 5
    assert p.slice(1, 3).data == b"ell"


def test_payload_synthetic_mode():
    p = Payload.synthetic("tag", 1000)
    assert p.is_synthetic
    assert p.nbytes == 1000
    sliced = p.slice(100, 50)
    assert sliced.tag == "tag+100"
    assert sliced.nbytes == 50
    # Full-range slice is identity.
    assert p.slice(0, 1000) is p


def test_payload_invalid_construction():
    with pytest.raises(InvalidCommand):
        Payload(data=b"x", tag="both")
    with pytest.raises(InvalidCommand):
        Payload(tag="no-size")
    with pytest.raises(InvalidCommand):
        Payload(tag="neg", nbytes=-1)


def test_payload_slice_bounds():
    p = Payload.of_bytes(b"abc")
    with pytest.raises(InvalidCommand):
        p.slice(2, 5)
    with pytest.raises(InvalidCommand):
        p.slice(-1, 1)


def test_payload_equality():
    assert Payload.of_bytes(b"x") == Payload.of_bytes(b"x")
    assert Payload.synthetic("t", 5) == Payload.synthetic("t", 5)
    assert Payload.synthetic("t", 5) != Payload.synthetic("u", 5)
    assert Payload.of_bytes(b"x") != Payload.synthetic("x", 1)


# -- Command validation ---------------------------------------------------------------


def test_command_validation():
    with pytest.raises(InvalidCommand):
        Command(Opcode.WRITE, 1, slba=0, nblocks=1)  # write needs payload
    with pytest.raises(InvalidCommand):
        Command(Opcode.READ, 1, slba=0, nblocks=0)  # zero-block read
    with pytest.raises(InvalidCommand):
        Command(Opcode.READ, 1, slba=-1, nblocks=1)
    # FLUSH needs no range.
    Command(Opcode.FLUSH, 1)
