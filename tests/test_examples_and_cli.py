"""Smoke tests: the examples and the CLI stay runnable."""

import subprocess
import sys

import pytest

from repro.cli import main as cli_main


def test_failure_recovery_example_runs():
    import examples.failure_recovery as demo

    demo.main()  # asserts internally


def test_quickstart_example_compiles_and_imports():
    import examples.quickstart  # noqa: F401
    import examples.comd_weak_scaling  # noqa: F401
    import examples.multilevel_checkpointing  # noqa: F401


@pytest.mark.slow
def test_quickstart_example_runs():
    import examples.quickstart as demo

    demo.main()


def test_cli_list():
    assert cli_main(["list"]) == 0


def test_cli_unknown_experiment():
    assert cli_main(["run", "fig99"]) == 2


def test_cli_run_fast_experiment(capsys):
    assert cli_main(["run", "ablation-distributors"]) == 0
    out = capsys.readouterr().out
    assert "round-robin" in out


def test_cli_module_invocation():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "list"],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0
    assert "fig7a" in result.stdout
