"""Tests for unit helpers and formatting."""

import pytest

from repro import units


def test_binary_sizes():
    assert units.KiB(1) == 1024
    assert units.MiB(2) == 2 * 1024**2
    assert units.GiB(1) == 1024**3
    assert units.TiB(1) == 1024**4
    assert units.KiB(1.5) == 1536


def test_times():
    assert units.ns(1) == pytest.approx(1e-9)
    assert units.us(3) == pytest.approx(3e-6)
    assert units.ms(2) == pytest.approx(2e-3)
    assert units.seconds(4) == 4.0


def test_rates():
    assert units.MB_per_s(1) == 1e6
    assert units.GB_per_s(2.2) == 2.2e9
    assert units.Gbit_per_s(100) == pytest.approx(12.5e9)


def test_fmt_bytes():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(units.KiB(2)) == "2.0 KiB"
    assert units.fmt_bytes(units.MiB(512)) == "512.0 MiB"
    assert units.fmt_bytes(units.GiB(3.5)) == "3.5 GiB"


def test_fmt_rate():
    assert units.fmt_rate(2.2e9) == "2.20 GB/s"
    assert units.fmt_rate(500) == "500.00 B/s"


def test_fmt_time():
    assert units.fmt_time(39.5) == "39.50 s"
    assert units.fmt_time(0.0445) == "44.50 ms"
    assert units.fmt_time(3e-6) == "3.00 us"
    assert units.fmt_time(5e-9) == "5.0 ns"
