"""Tests for the calibrated tier devices and their file-shaped clients."""

import pytest

from repro.bench import calibration as cal
from repro.errors import FileNotFound, OutOfSpace
from repro.sim.engine import Environment
from repro.tiers import (
    CXLSSDDevice,
    DeviceModel,
    NVMDevice,
    PosixTierAdapter,
    TierClient,
    TierKind,
    TierSet,
)
from repro.units import KiB, MiB


def run(env, gen):
    return env.run_until_complete(env.process(gen))


# -- the seam ---------------------------------------------------------------


def test_device_model_interface_is_abstract():
    dev = DeviceModel()
    for method in ("capacity_bytes", "free_bytes", "write_bandwidth",
                   "read_bandwidth", "tier_sync"):
        with pytest.raises(NotImplementedError):
            getattr(dev, method)()
    assert dev.tier_name == TierKind.NVME_SSD.value


def test_ssd_implements_device_model():
    import numpy as np

    from repro.nvme.device import SSD, intel_p4800x

    env = Environment()
    ssd = SSD(env, intel_p4800x(), "nvme0", rng=np.random.default_rng(0))
    assert isinstance(ssd, DeviceModel)
    assert ssd.tier_name == "nvme-ssd"
    assert ssd.capacity_bytes() == cal.P4800X_CAPACITY_BYTES
    assert ssd.write_bandwidth() == cal.P4800X_WRITE_BANDWIDTH
    assert ssd.read_bandwidth() == cal.P4800X_READ_BANDWIDTH

    def scenario():
        yield ssd.tier_write(0, MiB(4))
        yield ssd.tier_read(0, MiB(4))
        yield ssd.tier_sync()
        return env.now

    elapsed = run(env, scenario())
    floor = MiB(4) / cal.P4800X_WRITE_BANDWIDTH + MiB(4) / cal.P4800X_READ_BANDWIDTH
    assert elapsed > floor
    assert ssd.counters.get("tier_bytes_written") == MiB(4)


# -- NVM --------------------------------------------------------------------


def test_nvm_write_pays_latency_persist_and_bandwidth():
    env = Environment()
    nvm = NVMDevice(env)
    assert nvm.tier_name == "nvm"
    assert nvm.capacity_bytes() == cal.NVM_CAPACITY_BYTES

    def scenario():
        t0 = env.now
        yield nvm.tier_write(0, MiB(64))
        return env.now - t0

    elapsed = run(env, scenario())
    expected = (
        cal.NVM_WRITE_LATENCY
        + MiB(64) / cal.NVM_WRITE_BANDWIDTH
        + cal.NVM_PERSIST_BARRIER
    )
    assert elapsed == pytest.approx(expected, rel=1e-9)
    assert nvm.counters.get("bytes_written") == MiB(64)


def test_nvm_read_is_faster_than_write():
    env = Environment()
    nvm = NVMDevice(env)

    def timed(make_event):
        def scenario():
            t0 = env.now
            yield make_event()
            return env.now - t0
        return run(env, scenario())

    write = timed(lambda: nvm.tier_write(0, MiB(16)))
    read = timed(lambda: nvm.tier_read(0, MiB(16)))
    assert read < write  # 6.6 vs 2.3 GB/s, no persist barrier


def test_nvm_reserve_release():
    env = Environment()
    nvm = NVMDevice(env, capacity_bytes=MiB(8))
    nvm.reserve(MiB(6))
    assert nvm.free_bytes() == MiB(2)
    with pytest.raises(OutOfSpace):
        nvm.reserve(MiB(4))
    nvm.release(MiB(6))
    assert nvm.free_bytes() == MiB(8)


# -- CXL-SSD ----------------------------------------------------------------


def test_cxl_read_hit_vs_miss():
    """A re-read of just-written lines hits the device cache and runs at
    link speed; a cold read pays the flash miss path."""
    env = Environment()
    cxl = CXLSSDDevice(env)

    def timed(ev):
        def scenario():
            t0 = env.now
            yield ev()
            return env.now - t0
        return run(env, scenario())

    timed(lambda: cxl.tier_write(0, MiB(4)))
    hot = timed(lambda: cxl.tier_read(0, MiB(4)))
    cold = timed(lambda: cxl.tier_read(cal.CXL_CACHE_BYTES + MiB(64), MiB(4)))
    assert hot < cold
    assert cxl.counters.get("cache_hits") > 0
    assert cxl.counters.get("cache_misses") > 0


def test_cxl_cache_eviction_is_lru():
    env = Environment()
    cxl = CXLSSDDevice(env, cache_bytes=KiB(16))  # 4 lines of 4 KiB

    def scenario():
        yield cxl.tier_write(0, KiB(16))        # lines 0..3 resident
        yield cxl.tier_read(0, KiB(4))          # touch line 0 (MRU)
        yield cxl.tier_write(KiB(16), KiB(8))   # evicts lines 1, 2
        return None

    run(env, scenario())
    assert cxl.cache_residency(0, KiB(4)) == 1.0
    assert cxl.cache_residency(KiB(4), KiB(8)) == 0.0


def test_cxl_sync_drains_write_backlog():
    env = Environment()
    cxl = CXLSSDDevice(env)

    def scenario():
        yield cxl.tier_write(0, MiB(32))
        t0 = env.now
        yield cxl.tier_sync()
        return env.now - t0

    drain = run(env, scenario())
    assert drain >= cal.CXL_LINK_LATENCY


# -- clients ----------------------------------------------------------------


def test_tier_client_roundtrip_and_loss():
    env = Environment()
    client = TierClient(NVMDevice(env))

    def scenario():
        yield from client.write_file("/ckpt/a", MiB(2))
        nbytes = yield from client.read_file("/ckpt/a")
        return nbytes

    assert run(env, scenario()) == MiB(2)
    client.lose_data()

    def reread():
        yield from client.read_file("/ckpt/a")

    with pytest.raises(FileNotFound):
        run(env, reread())


def test_tier_client_capacity_check():
    env = Environment()
    client = TierClient(NVMDevice(env, capacity_bytes=MiB(4)))

    def scenario():
        yield from client.write_file("/ckpt/too-big", MiB(8))

    with pytest.raises(OutOfSpace):
        run(env, scenario())


def test_posix_adapter_over_microfs():
    from repro.bench.fleet import MicroFSFleet

    fleet = MicroFSFleet(1, partition_bytes=MiB(256))
    adapter = PosixTierAdapter(fleet.clients[0])

    def scenario():
        yield from adapter.write_file("/ckpt/x", MiB(1))
        nbytes = yield from adapter.read_file("/ckpt/x")
        return nbytes

    assert fleet.env.run_until_complete(
        fleet.env.process(scenario())) == MiB(1)


def test_tier_set_inventory():
    import numpy as np

    from repro.nvme.device import SSD, intel_p4800x

    env = Environment()
    tiers = TierSet("t")
    tiers.add(NVMDevice(env))
    tiers.add(CXLSSDDevice(env))
    tiers.add(SSD(env, intel_p4800x(), "nvme0", rng=np.random.default_rng(0)))
    inv = tiers.inventory()
    assert set(inv) == {"nvm", "cxl-ssd", "nvme-ssd"}
    assert inv["nvm"]["capacity_bytes"] == cal.NVM_CAPACITY_BYTES
    assert inv["cxl-ssd"]["write_bandwidth"] == cal.CXL_FLASH_WRITE_BANDWIDTH


def test_balancer_plan_tier_inventory():
    """The balancer folds attached tier devices into every plan."""
    from repro.apps.deployment import Deployment

    dep = Deployment(seed=3)
    nvm = NVMDevice(dep.env)
    dep.balancer.attach_tier_device(nvm)
    job, plan = dep.submit("inv", nprocs=2, devices=2)
    inv = plan.tier_inventory()
    assert inv["nvm"]["devices"] == 1
    assert inv["nvme-ssd"]["devices"] == 2
    assert inv["nvme-ssd"]["write_bandwidth"] == 2 * cal.P4800X_WRITE_BANDWIDTH
