"""Tests for cluster spec, network graph, and failure domains."""

import pytest

from repro.topology import (
    ClusterSpec,
    Node,
    NodeKind,
    NetworkTopology,
    Rack,
    derive_failure_domains,
    paper_testbed,
    partner_domains,
)
from repro.units import GiB


def test_paper_testbed_shape():
    cluster = paper_testbed()
    assert len(cluster.storage_nodes()) == 8
    assert len(cluster.compute_nodes()) == 16
    assert cluster.total_cores(NodeKind.COMPUTE) == 448  # 16 x 28
    assert cluster.total_ssds() == 8


def test_compute_node_with_ssd_rejected():
    with pytest.raises(ValueError):
        Node("bad", NodeKind.COMPUTE, "r", "p", 28, GiB(128), ssd_count=1)


def test_storage_node_without_ssd_rejected():
    with pytest.raises(ValueError):
        Node("bad", NodeKind.STORAGE, "r", "p", 28, GiB(128), ssd_count=0)


def test_duplicate_node_names_rejected():
    node = Node("dup", NodeKind.COMPUTE, "r0", "p0", 4, GiB(1))
    with pytest.raises(ValueError):
        ClusterSpec([Rack("r0", [node, node])])


def test_node_rack_mismatch_rejected():
    node = Node("n0", NodeKind.COMPUTE, "other-rack", "p0", 4, GiB(1))
    with pytest.raises(ValueError):
        ClusterSpec([Rack("r0", [node])])


def test_node_lookup():
    cluster = paper_testbed()
    assert cluster.node("stor00").kind is NodeKind.STORAGE
    with pytest.raises(KeyError):
        cluster.node("nope")


def test_hop_counts():
    topo = NetworkTopology(paper_testbed())
    # Same node.
    assert topo.hop_count("comp00", "comp00") == 0
    # Same rack: through one ToR switch.
    assert topo.hop_count("comp00", "comp01") == 1
    # Cross rack: ToR -> core -> ToR.
    assert topo.hop_count("comp00", "stor00") == 3
    # Symmetric.
    assert topo.hop_count("stor00", "comp00") == 3


def test_switch_inventory():
    topo = NetworkTopology(paper_testbed())
    switches = topo.switches()
    assert "switch-core" in switches
    assert len(switches) == 3  # core + 2 ToR


def test_failure_domains_group_by_rack_and_pdu():
    domains = derive_failure_domains(paper_testbed())
    assert len(domains) == 2
    by_id = {d.domain_id: d for d in domains}
    assert len(by_id["rack-storage/pdu-storage"].nodes) == 8
    assert len(by_id["rack-compute/pdu-compute"].nodes) == 16


def test_domain_membership():
    domains = derive_failure_domains(paper_testbed())
    storage_domain = next(d for d in domains if "storage" in d.domain_id)
    assert "stor03" in storage_domain
    assert "comp00" not in storage_domain


def test_partner_domains_exclude_self_and_sort_by_hops():
    cluster = paper_testbed()
    topo = NetworkTopology(cluster)
    domains = derive_failure_domains(cluster)
    partners = partner_domains(topo, domains)
    for domain_id, plist in partners.items():
        assert all(p.domain_id != domain_id for p in plist)
        assert len(plist) == len(domains) - 1


def test_partner_domains_closest_first_with_three_racks():
    # Three racks: r0 and r1 hang off one aggregation switch... our model
    # is single-core, so all cross-rack distances tie at 3 hops and the
    # ordering must fall back to domain-id determinism.
    racks = []
    for r in range(3):
        racks.append(
            Rack(
                f"r{r}",
                [
                    Node(f"n{r}{i}", NodeKind.COMPUTE, f"r{r}", f"p{r}", 4, GiB(1))
                    for i in range(2)
                ],
            )
        )
    cluster = ClusterSpec(racks)
    topo = NetworkTopology(cluster)
    domains = derive_failure_domains(cluster)
    partners = partner_domains(topo, domains)
    assert [d.domain_id for d in partners["r0/p0"]] == ["r1/p1", "r2/p2"]


def _many_domain_cluster():
    """3 racks x 4 PDUs: 12 domains, enough to exercise the cache."""
    racks = []
    for r in range(3):
        nodes = []
        for i in range(8):
            kind = NodeKind.STORAGE if i % 2 else NodeKind.COMPUTE
            nodes.append(Node(
                f"n{r}{i}", kind, f"r{r}", f"p{r}{i % 4}", 4, GiB(1),
                ssd_count=1 if kind is NodeKind.STORAGE else 0,
            ))
        racks.append(Rack(f"r{r}", nodes))
    return ClusterSpec(racks)


def test_hops_from_matches_pairwise_hop_count():
    topo = NetworkTopology(paper_testbed())
    names = [n.name for n in paper_testbed().nodes]
    table = topo.hops_from("comp00")
    for other in names:
        assert table[other] == topo.hop_count("comp00", other)


def test_domain_distance_cache_preserves_partner_ordering():
    """The pairwise hop cache is an optimisation only: cached and
    uncached distances agree, and partner lists come out identical."""
    from repro.topology.failure_domains import _domain_distance

    cluster = _many_domain_cluster()
    topo = NetworkTopology(cluster)
    domains = derive_failure_domains(cluster)

    cache = {}
    for a in domains:
        for b in domains:
            cached = _domain_distance(topo, a, b, cache)
            uncached = _domain_distance(topo, a, b, cache=None)
            brute = min(
                topo.hop_count(na.name, nb.name)
                for na in a.nodes for nb in b.nodes
            )
            assert cached == uncached == brute
    # Symmetric keys: n*(n+1)/2 unordered pairs, not n^2.
    n = len(domains)
    assert len(cache) == n * (n + 1) // 2

    partners = partner_domains(topo, domains)
    for domain in domains:
        expected = sorted(
            (d for d in domains if d.domain_id != domain.domain_id),
            key=lambda d: (_domain_distance(topo, domain, d), d.domain_id),
        )
        got = [d.domain_id for d in partners[domain.domain_id]]
        assert got == [d.domain_id for d in expected]
