"""Zone federation: failure domains grouped into availability zones."""

import pytest

from repro.topology import Zone, ZoneMap
from repro.topology.cluster import paper_testbed


def two_zone_map():
    return ZoneMap([
        Zone("za", ("d0",), ("n0", "n1")),
        Zone("zb", ("d1",), ("n2", "n3", "n4")),
    ])


def test_zone_membership():
    zone = Zone("za", ("d0",), ("n0", "n1"))
    assert "n0" in zone
    assert "n9" not in zone


def test_zone_map_queries():
    zmap = two_zone_map()
    assert zmap.names() == ["za", "zb"]
    assert zmap.zone_of("n0") == "za"
    assert zmap.zone_of("n4") == "zb"
    assert zmap.nodes_in("zb") == ["n2", "n3", "n4"]
    assert zmap.zone("za").domain_ids == ("d0",)


def test_zone_map_rejects_bad_shapes():
    with pytest.raises(ValueError, match="at least one zone"):
        ZoneMap([])
    with pytest.raises(ValueError, match="duplicate zone names"):
        ZoneMap([Zone("z", (), ("a",)), Zone("z", (), ("b",))])
    with pytest.raises(ValueError, match="appears in zones"):
        ZoneMap([Zone("za", (), ("a",)), Zone("zb", (), ("a",))])
    with pytest.raises(KeyError):
        two_zone_map().zone("nope")
    with pytest.raises(KeyError):
        two_zone_map().zone_of("n9")


def test_spread_places_one_per_zone_first():
    zmap = two_zone_map()
    # Candidate order within a zone is preserved; zones alternate.
    picked = zmap.spread(["n2", "n0", "n3", "n1"], 3)
    assert picked == ["n0", "n2", "n1"]
    assert {zmap.zone_of(p) for p in picked[:2]} == {"za", "zb"}


def test_spread_wraps_when_zones_run_out():
    zmap = two_zone_map()
    picked = zmap.spread(["n2", "n3", "n4"], 2)
    # All candidates in one zone: still fills the request.
    assert picked == ["n2", "n3"]
    with pytest.raises(ValueError, match="cannot spread"):
        zmap.spread(["n0"], 2)


def test_federate_paper_testbed():
    cluster = paper_testbed()
    zmap = ZoneMap.federate(cluster, zones=2)
    assert zmap.names() == ["zone0", "zone1"]
    # The testbed has exactly two failure domains (rack+PDU pairs), so
    # each zone is one whole domain: storage on one side, compute on the
    # other — zones never split a failure domain.
    zone_nodes = {z.name: set(z.node_names) for z in zmap.zones}
    all_nodes = {n.name for n in cluster.nodes}
    assert set().union(*zone_nodes.values()) == all_nodes
    for zone in zmap.zones:
        kinds = {name[:4] for name in zone.node_names}
        assert len(kinds) == 1  # stor* and comp* never share a zone


def test_federate_is_deterministic():
    a = ZoneMap.federate(paper_testbed(), zones=2)
    b = ZoneMap.federate(paper_testbed(), zones=2)
    assert [z.node_names for z in a.zones] == [z.node_names for z in b.zones]


def test_federate_rejects_more_zones_than_domains():
    with pytest.raises(ValueError, match="cannot federate"):
        ZoneMap.federate(paper_testbed(), zones=3)
